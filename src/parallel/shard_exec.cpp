#include "parallel/shard_exec.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace featgraph::parallel {

int choose_num_shards(std::int64_t num_rows, std::int64_t nnz,
                      const ShardSizing& sizing, int num_threads) {
  FG_CHECK(num_rows >= 0 && nnz >= 0);
  if (num_rows <= 1) return 1;
  const double work_bytes =
      static_cast<double>(num_rows) * static_cast<double>(sizing.bytes_per_row) +
      static_cast<double>(nnz) * static_cast<double>(sizing.bytes_per_edge);
  const double budget = std::max(sizing.llc_bytes, 1.0);
  // Enough shards that one shard's slice of the working set fits the LLC.
  std::int64_t shards = static_cast<std::int64_t>(work_bytes / budget) + 1;
  if (num_threads > 1) {
    // Stealing needs at least one shard per lane, and a little surplus so
    // imbalance has somewhere to migrate (2x is the classic over-decompose
    // factor: halves the worst-case tail without drowning in dispatch).
    shards = std::max<std::int64_t>(shards, 2 * num_threads);
  } else if (shards <= 1) {
    return 1;
  }
  shards = std::min<std::int64_t>(shards, num_rows);
  return static_cast<int>(std::max<std::int64_t>(shards, 1));
}

std::vector<std::int64_t> shard_row_bounds(const std::int64_t* indptr,
                                           std::int64_t num_rows,
                                           int num_shards) {
  FG_CHECK(num_rows >= 0 && num_shards >= 1);
  num_shards = static_cast<int>(
      std::min<std::int64_t>(num_shards, std::max<std::int64_t>(num_rows, 1)));
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(num_shards) + 1);
  for (int s = 0; s <= num_shards; ++s) {
    bounds[static_cast<std::size_t>(s)] =
        indptr != nullptr
            ? nnz_split_point(indptr, 0, num_rows, s, num_shards)
            : num_rows * s / num_shards;
  }
  return bounds;
}

}  // namespace featgraph::parallel
