#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/env.hpp"

namespace featgraph::parallel {

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 2;
  }
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<unsigned>(
      std::max(0L, support::env_long("FEATGRAPH_WORKERS", 0))));
  return pool;
}

void ThreadPool::launch(int num_threads, const std::function<void(int, int)>& fn) {
  FG_CHECK(num_threads >= 1);
  if (num_threads == 1) {
    fn(0, 1);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Attached launches are serialized among themselves: a nested/concurrent
  // launch runs inline instead of deadlocking on the slot. A live DETACHED
  // job is NOT a reason to degrade — the caller claims the attached slot and
  // drives lanes itself; free workers help, and with none free the caller
  // still completes every lane (multiplexed, never blocked on the pool).
  if (attached_.active()) {
    lock.unlock();
    for (int tid = 0; tid < num_threads; ++tid) fn(tid, num_threads);
    return;
  }
  attached_ = Job{&fn, num_threads, 0, num_threads};
  run_claimed_lanes(lock, fn);
}

bool ThreadPool::launch_if_idle(int num_threads,
                                const std::function<void(int, int)>& fn) {
  FG_CHECK(num_threads >= 1);
  if (num_threads == 1) {
    fn(0, 1);
    return true;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Decline under the lock — unlike launch()'s claim-anyway path, the caller
  // learns its lanes would NOT have run concurrently and takes another path.
  // Genuine concurrency needs a worker beyond those consumed by unfinished
  // detached lanes (the caller itself only drives one lane at a time).
  if (attached_.active()) return false;
  if (static_cast<int>(workers_.size()) <= detached_unfinished_) return false;
  attached_ = Job{&fn, num_threads, 0, num_threads};
  run_claimed_lanes(lock, fn);
  return true;
}

bool ThreadPool::launch_detached_if_idle(int num_threads,
                                         std::function<void(int, int)> fn) {
  FG_CHECK(num_threads >= 1);
  std::unique_lock<std::mutex> lock(mutex_);
  // Same claim discipline — the decision happens under the job-slot lock —
  // plus a worker-availability check: with no workers there is nobody to run
  // a lane the caller does not participate in. Declining while an attached
  // launch is in flight keeps the historical contract (the caller falls back
  // to a dedicated thread rather than queueing behind a kernel).
  if (detached_.active() || attached_.active() || workers_.empty())
    return false;
  detached_fn_ = std::make_shared<std::function<void(int, int)>>(std::move(fn));
  detached_ = Job{detached_fn_.get(), num_threads, 0, num_threads};
  detached_unfinished_ = num_threads;
  lock.unlock();
  work_ready_.notify_all();
  return true;
}

void ThreadPool::wait_detached_drained() {
  // The last lane of a detached job releases the slot from worker_loop —
  // AFTER the job's own code has returned. A caller that observed its
  // detached work finish (e.g. Server::close joining its lane) waits here
  // so the slot is reclaimable before it hands the pool to someone else.
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return !detached_.active(); });
}

void ThreadPool::run_claimed_lanes(std::unique_lock<std::mutex>& lock,
                                   const std::function<void(int, int)>& fn) {
  lock.unlock();
  work_ready_.notify_all();

  // The caller also executes lanes so a pool of N workers plus the caller
  // saturates N+1 cores and an attached launch can never wait on a busy
  // pool — even when every worker is held by detached lanes.
  for (;;) {
    lock.lock();
    if (attached_.next_lane >= attached_.lanes) break;  // keep lock; wait
    const int lane = attached_.next_lane++;
    lock.unlock();
    fn(lane, attached_.lanes);
    lock.lock();
    --attached_.remaining;
    if (attached_.remaining == 0) work_done_.notify_all();
    lock.unlock();
  }
  work_done_.wait(lock, [this] { return attached_.remaining == 0; });
  attached_ = Job{};
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] {
      return shutdown_ || attached_.pending() || detached_.pending();
    });
    if (shutdown_) return;
    while (attached_.pending() || detached_.pending()) {
      // Attached lanes first: they are short-lived kernels with a caller
      // blocked on them, while detached lanes may run for a server's
      // lifetime — picking a detached lane first could permanently consume
      // this worker.
      Job& job = attached_.pending() ? attached_ : detached_;
      const bool is_detached = &job == &detached_;
      const int lane = job.next_lane++;
      const auto* fn = job.fn;
      const int lanes = job.lanes;
      lock.unlock();
      (*fn)(lane, lanes);
      lock.lock();
      --job.remaining;
      if (is_detached) {
        --detached_unfinished_;
        if (job.remaining == 0) {
          // A detached job has no caller waiting in run_claimed_lanes to
          // clear the slot — the last lane releases it here.
          detached_ = Job{};
          detached_fn_.reset();
        }
      }
      if (job.remaining == 0) work_done_.notify_all();
    }
  }
}

}  // namespace featgraph::parallel
