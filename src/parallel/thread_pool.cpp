#include "parallel/thread_pool.hpp"

#include "support/check.hpp"

namespace featgraph::parallel {

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 2;
  }
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::launch(int num_threads, const std::function<void(int, int)>& fn) {
  // Launches are serialized: nested/concurrent launches run inline instead of
  // deadlocking on the single job slot.
  if (!launch_if_idle(num_threads, fn)) {
    for (int tid = 0; tid < num_threads; ++tid) fn(tid, num_threads);
  }
}

bool ThreadPool::launch_if_idle(int num_threads,
                                const std::function<void(int, int)>& fn) {
  FG_CHECK(num_threads >= 1);
  if (num_threads == 1) {
    fn(0, 1);
    return true;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Decline under the lock — unlike launch()'s inline fallback, the caller
  // learns its lanes would NOT have run concurrently and takes another path.
  if (job_ != nullptr) return false;
  job_ = &fn;
  job_lanes_ = num_threads;
  next_lane_ = 0;
  lanes_remaining_ = num_threads;
  ++epoch_;
  run_claimed_lanes(lock, fn);
  return true;
}

bool ThreadPool::launch_detached_if_idle(int num_threads,
                                         std::function<void(int, int)> fn) {
  FG_CHECK(num_threads >= 1);
  std::unique_lock<std::mutex> lock(mutex_);
  // Same claim discipline as launch_if_idle — the decision happens under
  // the job-slot lock — plus a worker-availability check: with no workers
  // there is nobody to run a lane the caller does not participate in.
  if (job_ != nullptr || workers_.empty()) return false;
  detached_job_ = std::make_shared<std::function<void(int, int)>>(std::move(fn));
  detached_ = true;
  job_ = detached_job_.get();
  job_lanes_ = num_threads;
  next_lane_ = 0;
  lanes_remaining_ = num_threads;
  ++epoch_;
  lock.unlock();
  work_ready_.notify_all();
  return true;
}

void ThreadPool::wait_detached_drained() {
  // The last lane of a detached job releases the slot from worker_loop —
  // AFTER the job's own code has returned. A caller that observed its
  // detached work finish (e.g. Server::close joining its lane) waits here
  // so the slot is reclaimable before it hands the pool to someone else.
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return !detached_; });
}

void ThreadPool::run_claimed_lanes(std::unique_lock<std::mutex>& lock,
                                   const std::function<void(int, int)>& fn) {
  lock.unlock();
  work_ready_.notify_all();

  // The caller also executes lanes so a pool of N workers plus the caller
  // saturates N+1 cores and a launch can never wait on a busy pool.
  for (;;) {
    lock.lock();
    if (next_lane_ >= job_lanes_) break;  // keep lock; wait for completion
    int lane = next_lane_++;
    lock.unlock();
    fn(lane, job_lanes_);
    lock.lock();
    --lanes_remaining_;
    if (lanes_remaining_ == 0) work_done_.notify_all();
    lock.unlock();
  }
  work_done_.wait(lock, [this] { return lanes_remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_ready_.wait(lock, [&] {
      return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch &&
                           next_lane_ < job_lanes_);
    });
    if (shutdown_) return;
    seen_epoch = epoch_;
    while (job_ != nullptr && next_lane_ < job_lanes_) {
      int lane = next_lane_++;
      const auto* fn = job_;
      int lanes = job_lanes_;
      lock.unlock();
      (*fn)(lane, lanes);
      lock.lock();
      --lanes_remaining_;
      if (lanes_remaining_ == 0) {
        // A detached job has no caller waiting in run_claimed_lanes to
        // clear the slot — the last lane releases it here.
        if (detached_) {
          job_ = nullptr;
          detached_ = false;
          detached_job_.reset();
        }
        work_done_.notify_all();
      }
    }
  }
}

}  // namespace featgraph::parallel
