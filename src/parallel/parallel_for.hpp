// Data-parallel loop helpers built on the thread pool.
//
// Two scheduling modes mirror the paper:
//  * parallel_for        — static range split, one contiguous block per lane;
//  * cooperative_chunks  — all threads collectively drain one chunk list via
//    an atomic cursor. FeatGraph uses this to make threads work on ONE graph
//    partition at a time (Sec. IV-A), which keeps the aggregate working set
//    bounded by a single partition and avoids LLC contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace featgraph::parallel {

/// Splits [begin, end) into `num_threads` contiguous blocks and runs
/// fn(i) for every i, each block on its own lane.
template <class Fn>
void parallel_for(std::int64_t begin, std::int64_t end, int num_threads,
                  Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Same split but hands each lane its [lo, hi) range once — used when the
/// body wants to amortize per-block setup (e.g. a private accumulator).
template <class Fn>
void parallel_for_ranges(std::int64_t begin, std::int64_t end, int num_threads,
                         Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1) {
    fn(begin, end);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    if (lo < hi) fn(lo, hi);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// All lanes drain `num_chunks` work items through a shared atomic cursor:
/// dynamic load balance with every thread cooperating on the same chunk
/// frontier.
template <class Fn>
void cooperative_chunks(std::int64_t num_chunks, int num_threads, Fn&& fn) {
  if (num_chunks == 0) return;
  if (num_threads <= 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  std::atomic<std::int64_t> cursor{0};
  std::function<void(int, int)> lane = [&](int, int) {
    for (;;) {
      std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(c);
    }
  };
  ThreadPool::global().launch(num_threads, lane);
}

}  // namespace featgraph::parallel
