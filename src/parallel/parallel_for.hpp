// Data-parallel loop helpers built on the thread pool.
//
// Three scheduling modes mirror the paper:
//  * parallel_for        — static range split, one contiguous block per lane;
//  * parallel_for_nnz_ranges — contiguous row blocks whose BOUNDARIES balance
//    nnz instead of row counts (binary search over the CSR indptr prefix
//    sums). On power-law graphs a static row split strands most threads
//    behind the one holding the hub rows — the single-machine GNN
//    load-imbalance pathology; nnz balancing removes it at zero bookkeeping
//    cost because indptr already is the degree prefix sum.
//  * cooperative_chunks  — all threads collectively drain one chunk list via
//    an atomic cursor. FeatGraph uses this to make threads work on ONE graph
//    partition at a time (Sec. IV-A), which keeps the aggregate working set
//    bounded by a single partition and avoids LLC contention.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>

#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace featgraph::parallel {

/// Splits [begin, end) into `num_threads` contiguous blocks and runs
/// fn(i) for every i, each block on its own lane.
template <class Fn>
void parallel_for(std::int64_t begin, std::int64_t end, int num_threads,
                  Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Same split but hands each lane its [lo, hi) range once — used when the
/// body wants to amortize per-block setup (e.g. a private accumulator).
template <class Fn>
void parallel_for_ranges(std::int64_t begin, std::int64_t end, int num_threads,
                         Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1) {
    fn(begin, end);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    if (lo < hi) fn(lo, hi);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Row index where lane boundary `k` of `lanes` falls when splitting rows
/// [begin, end) so each lane gets ~equal nnz. `indptr` is the CSR row-pointer
/// array (a prefix sum of row degrees); boundary k is the first row whose
/// cumulative nnz reaches k/lanes of the total. Boundaries are monotone and
/// boundary(0) == begin, boundary(lanes) == end, so consecutive boundaries
/// tile the interval exactly (trailing empty rows land in the last lane). A
/// single row is never split: a row heavier than total/lanes yields empty
/// neighbor lanes instead.
inline std::int64_t nnz_split_point(const std::int64_t* indptr,
                                    std::int64_t begin, std::int64_t end,
                                    int k, int lanes) {
  FG_CHECK(begin <= end && lanes >= 1 && k >= 0 && k <= lanes);
  if (k == 0) return begin;
  if (k == lanes) return end;
  const std::int64_t base = indptr[begin];
  const std::int64_t total = indptr[end] - base;
  const std::int64_t target = base + (total * k) / lanes;
  // First row r with indptr[r] >= target: [begin, r) has just met the
  // k/lanes quota (for r - 1 it was still below), so r is the smallest
  // valid boundary.
  const std::int64_t* lo =
      std::lower_bound(indptr + begin, indptr + end, target);
  return lo - indptr;
}

/// Like parallel_for_ranges, but lane boundaries equalize the nnz each lane
/// owns rather than its row count. Rows stay contiguous per lane (race-free:
/// each thread still owns its destination rows).
template <class Fn>
void parallel_for_nnz_ranges(const std::int64_t* indptr, std::int64_t begin,
                             std::int64_t end, int num_threads, Fn&& fn) {
  FG_CHECK(begin <= end);
  if (begin == end) return;
  if (num_threads <= 1) {
    fn(begin, end);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t lo = nnz_split_point(indptr, begin, end, tid, lanes);
    const std::int64_t hi =
        nnz_split_point(indptr, begin, end, tid + 1, lanes);
    if (lo < hi) fn(lo, hi);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// All lanes drain `num_chunks` work items through a shared atomic cursor:
/// dynamic load balance with every thread cooperating on the same chunk
/// frontier.
template <class Fn>
void cooperative_chunks(std::int64_t num_chunks, int num_threads, Fn&& fn) {
  if (num_chunks == 0) return;
  if (num_threads <= 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  std::atomic<std::int64_t> cursor{0};
  std::function<void(int, int)> lane = [&](int, int) {
    for (;;) {
      std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(c);
    }
  };
  ThreadPool::global().launch(num_threads, lane);
}

}  // namespace featgraph::parallel
