// Data-parallel loop helpers built on the thread pool.
//
// Three scheduling modes mirror the paper:
//  * parallel_for        — static range split, one contiguous block per lane;
//  * parallel_for_nnz_ranges — contiguous row blocks whose BOUNDARIES balance
//    nnz instead of row counts (binary search over the CSR indptr prefix
//    sums). On power-law graphs a static row split strands most threads
//    behind the one holding the hub rows — the single-machine GNN
//    load-imbalance pathology; nnz balancing removes it at zero bookkeeping
//    cost because indptr already is the degree prefix sum.
//  * cooperative_chunks  — all threads collectively drain one chunk list via
//    an atomic cursor. FeatGraph uses this to make threads work on ONE graph
//    partition at a time (Sec. IV-A), which keeps the aggregate working set
//    bounded by a single partition and avoids LLC contention.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace featgraph::parallel {

/// Splits [begin, end) into `num_threads` contiguous blocks and runs
/// fn(i) for every i, each block on its own lane.
template <class Fn>
void parallel_for(std::int64_t begin, std::int64_t end, int num_threads,
                  Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Same split but hands each lane its [lo, hi) range once — used when the
/// body wants to amortize per-block setup (e.g. a private accumulator).
template <class Fn>
void parallel_for_ranges(std::int64_t begin, std::int64_t end, int num_threads,
                         Fn&& fn) {
  FG_CHECK(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (num_threads <= 1) {
    fn(begin, end);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t chunk = (n + lanes - 1) / lanes;
    const std::int64_t lo = begin + tid * chunk;
    const std::int64_t hi = (lo + chunk < end) ? lo + chunk : end;
    if (lo < hi) fn(lo, hi);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Row index where lane boundary `k` of `lanes` falls when splitting rows
/// [begin, end) so each lane gets ~equal nnz. `indptr` is the CSR row-pointer
/// array (a prefix sum of row degrees); boundary k is the first row whose
/// cumulative nnz reaches k/lanes of the total. Boundaries are monotone and
/// boundary(0) == begin, boundary(lanes) == end, so consecutive boundaries
/// tile the interval exactly (trailing empty rows land in the last lane). A
/// single row is never split: a row heavier than total/lanes yields empty
/// neighbor lanes instead.
inline std::int64_t nnz_split_point(const std::int64_t* indptr,
                                    std::int64_t begin, std::int64_t end,
                                    int k, int lanes) {
  FG_CHECK(begin <= end && lanes >= 1 && k >= 0 && k <= lanes);
  if (k == 0) return begin;
  if (k == lanes) return end;
  const std::int64_t base = indptr[begin];
  const std::int64_t total = indptr[end] - base;
  // floor(total * k / lanes) without materializing total * k, which
  // overflows int64 once nnz x lanes passes 2^63 (billion-edge shards with
  // many lanes). Write total = q * lanes + r; then
  //   floor(total * k / lanes) = q * k + floor(r * k / lanes),
  // where q * k <= total (k <= lanes) and r * k < lanes^2 both fit.
  const std::int64_t q = total / lanes;
  const std::int64_t r = total % lanes;
  const std::int64_t target = base + q * k + (r * k) / lanes;
  // First row r with indptr[r] >= target: [begin, r) has just met the
  // k/lanes quota (for r - 1 it was still below), so r is the smallest
  // valid boundary.
  const std::int64_t* lo =
      std::lower_bound(indptr + begin, indptr + end, target);
  return lo - indptr;
}

/// Like parallel_for_ranges, but lane boundaries equalize the nnz each lane
/// owns rather than its row count. Rows stay contiguous per lane (race-free:
/// each thread still owns its destination rows).
template <class Fn>
void parallel_for_nnz_ranges(const std::int64_t* indptr, std::int64_t begin,
                             std::int64_t end, int num_threads, Fn&& fn) {
  FG_CHECK(begin <= end);
  if (begin == end) return;
  if (num_threads <= 1) {
    fn(begin, end);
    return;
  }
  std::function<void(int, int)> lane = [&](int tid, int lanes) {
    const std::int64_t lo = nnz_split_point(indptr, begin, end, tid, lanes);
    const std::int64_t hi =
        nnz_split_point(indptr, begin, end, tid + 1, lanes);
    if (lo < hi) fn(lo, hi);
  };
  ThreadPool::global().launch(num_threads, lane);
}

/// Counters a work-stealing drain reports back (tests + bench telemetry).
struct WorkStealStats {
  std::int64_t executed = 0;  // items run, across all lanes — == num_items
  std::int64_t stolen = 0;    // items a lane claimed from another lane's range
};

/// Work-stealing extension of cooperative_chunks: each lane OWNS a
/// contiguous slice of [0, num_items) behind its own atomic cursor and
/// drains it in `grain`-sized claims; a lane that empties its slice walks
/// the other lanes' cursors and steals grain-sized claims until every slice
/// is drained. Compared to the single shared cursor this keeps a lane on
/// ITS slice (locality: consecutive shards share boundary rows and source
/// ranges) while imbalance still migrates — the FeatGraph Sec. IV-A
/// cooperative discipline with dynamic balance bolted on.
///
/// Guarantees:
///  * every item in [0, num_items) is executed EXACTLY once (each claim is
///    a unique fetch_add interval on one cursor, and a lane's scan visits
///    every slice including those of logical lanes that never got a worker
///    — oversubscribed pools stay correct);
///  * num_threads <= 1 degrades to the in-order serial loop;
///  * results are deterministic whenever items own disjoint outputs — which
///    lane runs an item never changes what the item computes.
template <class Fn>
WorkStealStats work_stealing_chunks(std::int64_t num_items, int num_threads,
                                    std::int64_t grain, Fn&& fn) {
  WorkStealStats stats;
  if (num_items <= 0) return stats;
  if (grain < 1) grain = 1;
  if (num_threads <= 1 || num_items == 1) {
    for (std::int64_t c = 0; c < num_items; ++c) fn(c);
    stats.executed = num_items;
    return stats;
  }
  struct alignas(64) Slice {
    std::atomic<std::int64_t> next{0};
    std::int64_t end = 0;
  };
  const int lanes = num_threads;
  std::vector<Slice> slice(static_cast<std::size_t>(lanes));
  for (int t = 0; t < lanes; ++t) {
    slice[static_cast<std::size_t>(t)].next.store(
        num_items * t / lanes, std::memory_order_relaxed);
    slice[static_cast<std::size_t>(t)].end = num_items * (t + 1) / lanes;
  }
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> stolen{0};
  std::function<void(int, int)> lane = [&](int tid, int nlanes) {
    // Own slice first, then victims in ring order — stealers spread out
    // instead of all hammering lane 0's cursor.
    for (int off = 0; off < nlanes; ++off) {
      const int victim = (tid + off) % nlanes;
      auto& s = slice[static_cast<std::size_t>(victim)];
      for (;;) {
        const std::int64_t c = s.next.fetch_add(grain,
                                                std::memory_order_relaxed);
        if (c >= s.end) break;  // drained (cursor overshoot is harmless)
        const std::int64_t e = std::min(c + grain, s.end);
        for (std::int64_t i = c; i < e; ++i) fn(i);
        executed.fetch_add(e - c, std::memory_order_relaxed);
        if (off != 0) stolen.fetch_add(e - c, std::memory_order_relaxed);
      }
    }
  };
  ThreadPool::global().launch(num_threads, lane);
  stats.executed = executed.load(std::memory_order_relaxed);
  stats.stolen = stolen.load(std::memory_order_relaxed);
  return stats;
}

/// All lanes drain `num_chunks` work items through a shared atomic cursor:
/// dynamic load balance with every thread cooperating on the same chunk
/// frontier.
template <class Fn>
void cooperative_chunks(std::int64_t num_chunks, int num_threads, Fn&& fn) {
  if (num_chunks == 0) return;
  if (num_threads <= 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  std::atomic<std::int64_t> cursor{0};
  std::function<void(int, int)> lane = [&](int, int) {
    for (;;) {
      std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(c);
    }
  };
  ThreadPool::global().launch(num_threads, lane);
}

}  // namespace featgraph::parallel
