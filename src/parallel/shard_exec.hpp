// Shard-parallel execution engine (the ROADMAP's "shard-parallel execution
// engine + real multi-core numbers" item).
//
// A SHARD is a contiguous destination-row range of one CSR (or of one
// partition segment — sharding composes with the Sec. IV-A source
// partitioning: threads still sweep one partition at a time, sharded WITHIN
// it). Shard boundaries are nnz-balanced via nnz_split_point, and the shard
// count is chosen so one shard's working set — its output rows, the source
// rows its edges stream, and its adjacency slice — fits the LLC budget, the
// same sizing rule heuristic_spmm_schedule applies to partitions.
//
// Execution: shards are drained by work_stealing_chunks (parallel_for.hpp) —
// each lane owns a contiguous run of shards behind its own atomic cursor and
// steals grain-sized runs from other lanes once its own are done.
//
// Determinism argument (the "merge at shard boundaries" contract): a shard
// OWNS its destination rows exclusively — shards tile [0, num_rows) — so the
// merged output is plain concatenation by ownership, there are no partial
// sums to combine, and a row's edges are visited in exactly the CSR order
// the unsharded kernel uses. Which lane runs a shard, the steal granularity,
// and the thread count therefore never change a single bit of the output:
// sharded == unsharded at every thread count, per ISA, pinned by
// tests/test_shard_exec.cpp's invariance matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace featgraph::parallel {

/// Per-feature-row and per-edge byte estimates of an SpMM-shaped sweep used
/// by choose_num_shards (float features: out row + streamed source row;
/// edge: index + edge id + the source row lines it touches are already
/// counted per row).
struct ShardSizing {
  std::int64_t bytes_per_row = 0;
  std::int64_t bytes_per_edge = 0;
  double llc_bytes = 25.0 * 1024 * 1024;  // paper machine: 25 MB LLC
};

/// Shard count for `num_rows` rows / `nnz` edges under `sizing`: enough
/// shards that one shard's working set fits the LLC budget, at least one
/// shard per thread (stealing needs per-lane slices), at most one shard per
/// row. Returns 1 when a single shard already fits and num_threads <= 1 —
/// sharding is pure overhead there.
int choose_num_shards(std::int64_t num_rows, std::int64_t nnz,
                      const ShardSizing& sizing, int num_threads);

/// Row boundaries of `num_shards` shards over rows [0, num_rows):
/// bounds.size() == num_shards + 1, bounds.front() == 0, bounds.back() ==
/// num_rows, consecutive bounds tile the interval. With `indptr` non-null
/// the boundaries balance nnz (nnz_split_point — a hub row yields empty
/// neighbor shards rather than being split); with indptr == nullptr they
/// balance row counts.
std::vector<std::int64_t> shard_row_bounds(const std::int64_t* indptr,
                                           std::int64_t num_rows,
                                           int num_shards);

/// Runs `body(r0, r1)` over every shard of rows [0, num_rows) with
/// cross-shard work stealing: shards are the work items of
/// work_stealing_chunks, claimed `steal_grain` at a time. Bit-identical to
/// body(0, num_rows) whenever body only writes rows in [r0, r1) — the shard
/// executor's whole contract. num_threads <= 1 sweeps shards in order on the
/// caller (still exercising the shard decomposition, so 1-lane tests cover
/// the same code path). Returns the steal counters for telemetry.
template <class Body>
WorkStealStats sharded_row_sweep(const std::int64_t* indptr,
                                 std::int64_t num_rows, int num_shards,
                                 std::int64_t steal_grain, int num_threads,
                                 const Body& body) {
  // The steal counters double as process metrics: every drain mirrors its
  // stats into the shard.* registry counters, so a serving run or bench can
  // read migration pressure without plumbing WorkStealStats upward.
  static obs::Counter& obs_executed =
      obs::Registry::global().counter("shard.shards.executed");
  static obs::Counter& obs_stolen =
      obs::Registry::global().counter("shard.steal.count");
  WorkStealStats stats;
  if (num_rows <= 0) return stats;
  if (num_shards > num_rows) num_shards = static_cast<int>(num_rows);
  if (num_shards <= 1) {
    body(0, num_rows);
    stats.executed = 1;
    obs_executed.add(1);
    return stats;
  }
  const std::vector<std::int64_t> bounds =
      shard_row_bounds(indptr, num_rows, num_shards);
  stats = work_stealing_chunks(
      num_shards, num_threads, steal_grain, [&](std::int64_t s) {
        const std::int64_t r0 = bounds[static_cast<std::size_t>(s)];
        const std::int64_t r1 = bounds[static_cast<std::size_t>(s) + 1];
        if (r0 < r1) body(r0, r1);
      });
  obs_executed.add(stats.executed);
  obs_stolen.add(stats.stolen);
  return stats;
}

}  // namespace featgraph::parallel
