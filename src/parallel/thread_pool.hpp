// Persistent worker pool in the spirit of the TVM runtime thread pool the
// paper relies on (Sec. IV-A): workers are created once and reused across
// kernel launches (Core Guidelines CP.41), wait on a condition variable with
// a predicate (CP.42), and kernels hand them embarrassingly parallel chunks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace featgraph::parallel {

/// A fixed set of persistent workers executing "launches". A launch runs
/// `fn(tid, num_threads)` on `num_threads` logical lanes; lanes beyond the
/// number of OS workers are multiplexed onto the available workers, so a
/// launch with num_threads == 8 is functionally correct on a 2-core host.
class ThreadPool {
 public:
  /// Creates `num_workers` OS threads (defaults to hardware concurrency).
  explicit ThreadPool(unsigned num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(tid, num_threads) for tid in [0, num_threads). Blocks until all
  /// lanes finish. num_threads == 1 executes inline on the caller so
  /// single-threaded measurements pay zero scheduling overhead.
  void launch(int num_threads, const std::function<void(int, int)>& fn);

  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Like launch(), but atomically declines instead of running inline when
  /// a launch is already in flight: returns false WITHOUT executing any
  /// lane. For callers that need GENUINE lane concurrency — the sampling
  /// pipeline's producer/consumer pair, where a producer blocking on a
  /// bounded queue with no consumer lane running would deadlock. The claim
  /// happens under the job-slot lock, so there is no busy-check/launch race:
  /// either this call owns the slot (lanes run concurrently, workers are
  /// idle by the serialization invariant) or the caller takes its fallback.
  bool launch_if_idle(int num_threads, const std::function<void(int, int)>& fn);

  /// launch_if_idle's DETACHED sibling, the claim discipline the serving
  /// front-end's admission loop reuses (src/serve): atomically claims the
  /// job slot if idle and hands the lanes to pool WORKERS only — the caller
  /// does not participate and returns immediately. The slot is released by
  /// the last lane to finish, so `fn` may run for the lifetime of a server.
  /// Declines (returns false, nothing runs) when a launch is in flight or
  /// the pool has no workers; the caller takes its fallback (e.g. a
  /// dedicated thread). While a detached job holds the slot, launch() from
  /// any thread — including `fn` itself — degrades to inline execution, so
  /// a long-lived lane can freely run parallel_for kernels and never
  /// deadlocks on its own slot.
  bool launch_detached_if_idle(int num_threads,
                               std::function<void(int, int)> fn);

  /// Blocks until no detached job holds the slot. The last detached lane
  /// releases the slot AFTER the job's code returns, so a caller that saw
  /// its detached work finish must wait here before expecting a fresh
  /// launch_detached_if_idle claim to succeed. Returns immediately when no
  /// detached job is active.
  void wait_detached_drained();

  /// Process-wide pool, sized to hardware concurrency, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Runs the claimed job's lanes (caller participates), waits for
  /// completion, releases the job slot. `lock` must hold mutex_ with the
  /// job state already published.
  void run_claimed_lanes(std::unique_lock<std::mutex>& lock,
                         const std::function<void(int, int)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  // State of the current launch, guarded by mutex_ (CP.50: mutex lives with
  // the data it protects).
  const std::function<void(int, int)>* job_ = nullptr;
  int job_lanes_ = 0;        // total logical lanes in this launch
  int next_lane_ = 0;        // next lane index to hand to a worker
  int lanes_remaining_ = 0;  // lanes not yet completed
  std::uint64_t epoch_ = 0;  // bumps every launch so workers detect new work
  bool shutdown_ = false;
  // Detached-job state: the pool owns the function (the caller is gone by
  // the time lanes run); the last finishing lane releases the slot.
  std::shared_ptr<std::function<void(int, int)>> detached_job_;
  bool detached_ = false;
};

}  // namespace featgraph::parallel
