// Persistent worker pool in the spirit of the TVM runtime thread pool the
// paper relies on (Sec. IV-A): workers are created once and reused across
// kernel launches (Core Guidelines CP.41), wait on a condition variable with
// a predicate (CP.42), and kernels hand them embarrassingly parallel chunks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace featgraph::parallel {

/// A fixed set of persistent workers executing "launches". A launch runs
/// `fn(tid, num_threads)` on `num_threads` logical lanes; lanes beyond the
/// number of OS workers are multiplexed onto the available workers, so a
/// launch with num_threads == 8 is functionally correct on a 2-core host.
///
/// Two independent job slots coexist: one ATTACHED slot (launch /
/// launch_if_idle — the caller participates and blocks until done) and one
/// DETACHED slot (launch_detached_if_idle — workers only, may run for a
/// server's lifetime). Workers prefer attached lanes, so a kernel launched
/// while a serving lane holds the detached slot still gets every worker the
/// detached job is not actively occupying — the single-slot design this
/// replaces degraded ALL launches to inline serial for the detached job's
/// whole lifetime.
class ThreadPool {
 public:
  /// Creates `num_workers` OS threads (defaults to hardware concurrency).
  explicit ThreadPool(unsigned num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(tid, num_threads) for tid in [0, num_threads). Blocks until all
  /// lanes finish. num_threads == 1 executes inline on the caller so
  /// single-threaded measurements pay zero scheduling overhead. When the
  /// attached slot is already claimed (a nested or concurrent launch) the
  /// lanes run inline serially instead of deadlocking on the slot; a live
  /// DETACHED job does NOT force the inline fallback — the caller claims the
  /// attached slot and drives lanes itself, with any worker not consumed by
  /// a detached lane helping.
  void launch(int num_threads, const std::function<void(int, int)>& fn);

  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Like launch(), but atomically declines instead of running inline when
  /// the lanes could NOT run genuinely concurrently: returns false WITHOUT
  /// executing any lane when the attached slot is claimed OR every worker is
  /// consumed by unfinished detached lanes (the caller alone cannot overlap
  /// two lanes in time). For callers that need GENUINE lane concurrency —
  /// the sampling pipeline's producer/consumer pair, where a producer
  /// blocking on a bounded queue with no consumer lane running would
  /// deadlock. The claim happens under the job-slot lock, so there is no
  /// busy-check/launch race: either this call owns the slot with a free
  /// worker guaranteed, or the caller takes its fallback.
  bool launch_if_idle(int num_threads, const std::function<void(int, int)>& fn);

  /// The DETACHED slot, the claim discipline the serving front-end's
  /// admission loop uses (src/serve): atomically claims it if free and hands
  /// the lanes to pool WORKERS only — the caller does not participate and
  /// returns immediately. The slot is released by the last lane to finish,
  /// so `fn` may run for the lifetime of a server. Declines (returns false,
  /// nothing runs) when the detached slot is already held, an attached
  /// launch is in flight, or the pool has no workers; the caller takes its
  /// fallback (e.g. a dedicated thread). A long-lived detached lane can
  /// freely run launch()/parallel_for kernels: they claim the SEPARATE
  /// attached slot and recruit the remaining workers (no self-deadlock, and
  /// no serial degradation — the starvation bug this split fixes).
  bool launch_detached_if_idle(int num_threads,
                               std::function<void(int, int)> fn);

  /// Blocks until no detached job holds its slot. The last detached lane
  /// releases the slot AFTER the job's code returns, so a caller that saw
  /// its detached work finish must wait here before expecting a fresh
  /// launch_detached_if_idle claim to succeed. Returns immediately when no
  /// detached job is active.
  void wait_detached_drained();

  /// Process-wide pool, created on first use. Sized to hardware concurrency
  /// unless FEATGRAPH_WORKERS overrides it — the knob CI's multi-worker leg
  /// uses to exercise real lane concurrency on 1-core hosts.
  static ThreadPool& global();

 private:
  /// One job slot's state, guarded by mutex_ (CP.50: mutex lives with the
  /// data it protects).
  struct Job {
    const std::function<void(int, int)>* fn = nullptr;
    int lanes = 0;      // total logical lanes in this launch
    int next_lane = 0;  // next lane index to hand out
    int remaining = 0;  // lanes not yet completed
    bool active() const { return fn != nullptr; }
    bool pending() const { return fn != nullptr && next_lane < lanes; }
  };

  void worker_loop();
  /// Runs the claimed attached job's lanes (caller participates), waits for
  /// completion, releases the attached slot. `lock` must hold mutex_ with
  /// the job state already published.
  void run_claimed_lanes(std::unique_lock<std::mutex>& lock,
                         const std::function<void(int, int)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  Job attached_;
  Job detached_;
  /// Detached lanes not yet finished (pending + running). Workers consumed
  /// by these are unavailable for attached work — launch_if_idle's
  /// genuine-concurrency check reads this.
  int detached_unfinished_ = 0;
  /// The pool owns the detached function (the caller is gone by the time
  /// lanes run); the last finishing lane releases it.
  std::shared_ptr<std::function<void(int, int)>> detached_fn_;
  bool shutdown_ = false;
};

}  // namespace featgraph::parallel
