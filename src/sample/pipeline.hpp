// Pipelined minibatch serving loop + block-schedule cache.
//
// The serving-scale inference loop every minibatch GNN system runs:
//
//        producer lane                    consumer lane
//   ┌──────────────────────┐   bounded   ┌─────────────────────────┐
//   │ sample blocks i+1    │    queue    │ block compute of batch i │
//   │ gather features i+1  ├────────────▶│ (SpMM / SAGE / GCN ...)  │
//   └──────────────────────┘  (capacity) └─────────────────────────┘
//
// Batch i+1's sampling + feature gather overlaps batch i's block compute.
// Both lanes run as ONE 2-lane launch on the existing thread pool (the
// caller executes one lane, a pool worker the other). ThreadPool serializes
// launches — a nested launch runs inline — so the consumer's kernels may
// freely use parallel_for inside its lane; and the overlap itself only runs
// when ThreadPool::launch_if_idle atomically claims the job slot. A
// declined claim (run_pipeline called from inside another launch, or racing
// a concurrent one — where the two lanes would run sequentially and a full
// queue could never drain) falls back to the serial path. No
// check-then-launch window exists: the claim happens under the pool's lock.
//
// Determinism: batch i's blocks are a pure function of (graph, seed, i) —
// see neighbor_sampler.hpp — and the consumer always sees batches in index
// order, so pipelined and serial runs produce identical results.
//
// The BlockScheduleCache amortizes schedule selection across the stream:
// sampled blocks arrive by the thousands with only a handful of distinct
// SHAPES (batch size x fanout x feature width), so the tuner/heuristic is
// consulted once per shape class — (log2 rows, log2 nnz, exact feature
// width, threads) — instead of once per batch. minidgl's ExecContext
// carries an optional pointer to one; the sparse ops route their schedule
// lookup through it when set.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "sample/neighbor_sampler.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::sample {

/// One produced minibatch, ready for block compute.
struct PreparedBatch {
  std::int64_t index = 0;
  std::vector<graph::vid_t> seeds;
  MinibatchBlocks blocks;
  /// Gathered input features: one row per blocks.input_nodes() entry.
  tensor::Tensor input_feats;
};

struct PipelineOptions {
  std::int64_t batch_size = 256;
  /// Prepared batches buffered ahead of the consumer (>= 1).
  int queue_capacity = 2;
  /// Overlap produce(i+1) with consume(i); false = sample-then-compute
  /// serially (the baseline bench_minibatch prices).
  bool pipelined = true;
  /// Threads for the feature gather inside the producer lane. NOTE: while
  /// the 2-lane overlap is active it holds the pool's ATTACHED job slot, so
  /// the gather's nested launch runs inline — effectively one thread. The
  /// knob only fans out in the serial path (pipelined = false, a declined
  /// claim, or a single batch). The serving lane has no such limit: it runs
  /// DETACHED (src/serve), so its nested launches recruit real workers.
  int gather_threads = 1;
  /// Threads for the shard-parallel neighbor sampling inside the producer
  /// lane (NeighborSampler::sample's num_threads — deterministic at any
  /// value). Same overlap caveat as gather_threads.
  int sample_threads = 1;
};

struct PipelineStats {
  std::int64_t batches = 0;
  /// Deepest the prepared-batch queue ever got (<= queue_capacity).
  int max_queue_depth = 0;
  /// Seconds the producer lane spent sampling + gathering.
  double produce_seconds = 0.0;
  /// Seconds the consumer lane spent in block compute.
  double consume_seconds = 0.0;
  /// Wall-clock of the whole loop; under genuine overlap this approaches
  /// max(produce, consume) instead of their sum.
  double total_seconds = 0.0;
  /// True when the producer and consumer lanes OBSERVABLY ran on distinct
  /// threads (false = serial fallback, or the claim succeeded but one
  /// thread ended up executing both lanes back to back — reported honestly
  /// so pipelined-vs-serial comparisons never mislabel a serial run).
  bool overlapped = false;
};

/// Whether the 2-lane overlap can possibly run the lanes on DISTINCT
/// threads: it needs a second hardware context (on a 1-core host the lanes
/// time-slice one core and the queue handoff is pure overhead — measured
/// ~0.9x vs serial) and at least one pool worker to execute the second
/// lane. run_pipeline consults this up front and degrades to the serial
/// path when false, so `pipelined = true` is always at least as fast as
/// serial.
bool pipeline_can_overlap(unsigned hardware_concurrency,
                          unsigned pool_workers);

/// Drives minibatches of `seeds` (contiguous chunks of `batch_size`, last
/// one partial) through sample -> gather -> `consume`, overlapping the next
/// batch's production with the current batch's consumption when possible
/// (see pipeline_can_overlap). `consume` runs on batches in strictly
/// increasing index order; the batch is handed over mutably so the consumer
/// may move tensors out.
PipelineStats run_pipeline(const NeighborSampler& sampler,
                           const tensor::Tensor& features,
                           const std::vector<graph::vid_t>& seeds,
                           const PipelineOptions& options,
                           const std::function<void(PreparedBatch&)>& consume);

/// Schedule memo keyed on block SHAPE CLASS: (floor log2 rows, floor log2
/// nnz, exact feature width, thread count, lowered-program hash). The
/// program hash (core::schedule_program_hash of the Schedule-IR the caller
/// intends to run — hash of the empty program when none) keeps two launches
/// in the same geometric class but under DIFFERENT IR programs from
/// aliasing one cache line. Thread-safe; `tune` runs on a miss OUTSIDE the
/// lock (wrap a heuristic or a real tuner call — the pipeline's stream of
/// same-shaped blocks then reuses the winner). Concurrent first lookups of
/// one fresh class may each run `tune`, but the first inserter wins: every
/// caller gets the SAME schedule back and the class counts exactly one
/// miss (Pipeline.ConcurrentTunersKeepFirstScheduleAndOneMiss).
class BlockScheduleCache {
 public:
  core::CpuSpmmSchedule schedule_for(
      std::int64_t rows, std::int64_t nnz, std::int64_t feat_width,
      int num_threads, std::uint64_t program_hash,
      const std::function<core::CpuSpmmSchedule()>& tune);

  std::int64_t hits() const;
  std::int64_t misses() const;
  void reset_stats();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, core::CpuSpmmSchedule> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace featgraph::sample
