#include "sample/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sample/feature_loader.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace featgraph::sample {

namespace {

/// Live handoff-queue depth, visible to a profile report mid-run. One gauge
/// for the process: concurrent pipelines blend, which is exactly the load
/// signal the gauge exists to show.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("pipeline.queue.depth");
  return g;
}

/// Bounded FIFO handoff between the producer and consumer lanes (CP.42
/// style: every wait has a predicate). close() lets the producer signal
/// end-of-stream once the last batch is pushed.
class BatchQueue {
 public:
  explicit BatchQueue(int capacity) : capacity_(capacity) {
    FG_CHECK(capacity >= 1);
  }

  void push(PreparedBatch&& batch) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return static_cast<int>(queue_.size()) < capacity_;
    });
    queue_.push_back(std::move(batch));
    if (static_cast<int>(queue_.size()) > max_depth_)
      max_depth_ = static_cast<int>(queue_.size());
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    not_empty_.notify_one();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// False at end-of-stream (queue drained and closed).
  bool pop(PreparedBatch& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    not_full_.notify_one();
    return true;
  }

  int max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PreparedBatch> queue_;
  const int capacity_;
  int max_depth_ = 0;
  bool closed_ = false;
};

PreparedBatch produce_batch(const NeighborSampler& sampler,
                            const tensor::Tensor& features,
                            const std::vector<graph::vid_t>& seeds,
                            std::int64_t index, std::int64_t batch_size,
                            int gather_threads, int sample_threads) {
  static obs::Counter& obs_batches =
      obs::Registry::global().counter("pipeline.batch.produced");
  obs_batches.add(1);
  FG_TRACE_SCOPE("pipeline.produce", obs::arg("batch", index));
  PreparedBatch batch;
  batch.index = index;
  const auto lo = static_cast<std::size_t>(index * batch_size);
  const auto hi = std::min(seeds.size(), lo + static_cast<std::size_t>(batch_size));
  batch.seeds.assign(seeds.begin() + static_cast<std::ptrdiff_t>(lo),
                     seeds.begin() + static_cast<std::ptrdiff_t>(hi));
  batch.blocks = sampler.sample(batch.seeds, static_cast<std::uint64_t>(index),
                                sample_threads);
  batch.input_feats =
      gather_rows(features, batch.blocks.input_nodes(), gather_threads);
  return batch;
}

}  // namespace

bool pipeline_can_overlap(unsigned hardware_concurrency,
                          unsigned pool_workers) {
  // One hardware context: the two lanes would time-slice a single core, so
  // the queue handoff is pure overhead over the serial loop. No pool
  // worker: nobody can run the second lane.
  return hardware_concurrency >= 2 && pool_workers >= 1;
}

PipelineStats run_pipeline(const NeighborSampler& sampler,
                           const tensor::Tensor& features,
                           const std::vector<graph::vid_t>& seeds,
                           const PipelineOptions& options,
                           const std::function<void(PreparedBatch&)>& consume) {
  FG_CHECK(options.batch_size >= 1);
  PipelineStats stats;
  const std::int64_t num_batches =
      (static_cast<std::int64_t>(seeds.size()) + options.batch_size - 1) /
      options.batch_size;
  stats.batches = num_batches;
  if (num_batches == 0) return stats;
  support::Timer total;

  // The 2-lane overlap needs GENUINE lane concurrency: a producer blocking
  // on a full queue no consumer lane is draining would deadlock. So the
  // overlap only runs if (a) the host can actually run the lanes on
  // distinct threads — pipeline_can_overlap; a 1-core host degrades to the
  // serial loop UP FRONT instead of paying the queue handoff for nothing —
  // and (b) launch_if_idle atomically claims the pool's job slot: claimed
  // means our two lanes really run concurrently (pool workers are idle by
  // the launch-serialization invariant); declined (run_pipeline called from
  // inside another launch, or racing one) means the loop below serves
  // serially instead.
  if (options.pipelined && num_batches > 1 &&
      pipeline_can_overlap(std::thread::hardware_concurrency(),
                           parallel::ThreadPool::global().num_workers())) {
    BatchQueue queue(options.queue_capacity);
    double produce_seconds = 0.0;
    double consume_seconds = 0.0;
    std::thread::id lane_thread[2];
    const bool claimed = parallel::ThreadPool::global().launch_if_idle(
        2, [&](int tid, int) {
          lane_thread[tid] = std::this_thread::get_id();
          if (tid == 0) {
            // Producer: sample + gather batch i while the consumer computes
            // i-1. Work is timed per batch so queue-blocked time is not
            // counted.
            for (std::int64_t i = 0; i < num_batches; ++i) {
              support::Timer t;
              PreparedBatch batch =
                  produce_batch(sampler, features, seeds, i,
                                options.batch_size, options.gather_threads,
                                options.sample_threads);
              produce_seconds += t.seconds();
              queue.push(std::move(batch));
            }
            queue.close();
          } else {
            PreparedBatch batch;
            while (queue.pop(batch)) {
              support::Timer t;
              FG_TRACE_SCOPE("pipeline.consume", obs::arg("batch", batch.index));
              consume(batch);
              consume_seconds += t.seconds();
            }
          }
        });
    if (claimed) {
      stats.produce_seconds = produce_seconds;
      stats.consume_seconds = consume_seconds;
      stats.max_queue_depth = queue.max_depth();
      // Claiming the job slot makes concurrency POSSIBLE; report whether it
      // actually happened. If the fast producer drained every batch before
      // a worker woke, the caller ran both lanes back to back — that's a
      // serial execution and the bench comparison must not call it overlap.
      stats.overlapped = lane_thread[0] != lane_thread[1];
      stats.total_seconds = total.seconds();
      return stats;
    }
  }

  for (std::int64_t i = 0; i < num_batches; ++i) {
    support::Timer t;
    PreparedBatch batch = produce_batch(sampler, features, seeds, i,
                                        options.batch_size,
                                        options.gather_threads,
                                        options.sample_threads);
    stats.produce_seconds += t.seconds();
    t.reset();
    {
      FG_TRACE_SCOPE("pipeline.consume", obs::arg("batch", batch.index));
      consume(batch);
    }
    stats.consume_seconds += t.seconds();
  }
  stats.total_seconds = total.seconds();
  return stats;
}

core::CpuSpmmSchedule BlockScheduleCache::schedule_for(
    std::int64_t rows, std::int64_t nnz, std::int64_t feat_width,
    int num_threads, std::uint64_t program_hash,
    const std::function<core::CpuSpmmSchedule()>& tune) {
  // Shape-class key: sizes quantized to their floor log2 bucket (blocks of
  // one batch stream differ by a few rows/edges, not by magnitude), feature
  // width and thread count exact (few distinct values, and schedules
  // genuinely depend on them). Empty sizes (rows or nnz == 0) get their OWN
  // bucket — floor log2 would fold 0 in with 1, and an empty block's
  // degenerate schedule must not be served to singleton blocks (or vice
  // versa). Every field is folded in FULL WIDTH through a golden-ratio hash
  // combine rather than packed into fixed bit slots: the old packing shifted
  // feat_width into bits [8, 8 + width), so a width >= 2^32 XOR-clobbered
  // the log2 fields and aliased unrelated classes.
  auto log2_bucket = [](std::int64_t v) -> std::uint64_t {
    if (v <= 0) return 0;  // empty sizes: a bucket of their own
    std::uint64_t b = 1;   // v == 1 -> bucket 1, [2, 4) -> 2, ...
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  };
  auto combine = [](std::uint64_t h, std::uint64_t v) -> std::uint64_t {
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  };
  std::uint64_t key = log2_bucket(rows);
  key = combine(key, log2_bucket(nnz));
  key = combine(key, static_cast<std::uint64_t>(feat_width));
  key = combine(key, static_cast<std::uint64_t>(num_threads));
  key = combine(key, program_hash);
  // Per-instance hits_/misses_ stay the tested API; the registry counters
  // are a process-wide mirror so profile reports see schedule-cache traffic.
  static obs::Counter& obs_hits =
      obs::Registry::global().counter("cache.schedule.hit");
  static obs::Counter& obs_misses =
      obs::Registry::global().counter("cache.schedule.miss");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      obs_hits.add(1);
      return it->second;
    }
  }
  // Tune OUTSIDE the lock: a real tuner callback times kernel launches and
  // must not serialize against concurrent lookups. Two racers may both tune
  // the same fresh class; the re-check below makes the FIRST inserter the
  // winner — a later racer discards its own schedule, returns the cached
  // one (so every caller of one class observes one schedule), and counts a
  // hit, keeping misses() == number of distinct classes tuned.
  const core::CpuSpmmSchedule sched = tune();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.try_emplace(key, sched);
  if (inserted) {
    ++misses_;
    obs_misses.add(1);
  } else {
    ++hits_;
    obs_hits.add(1);
  }
  return it->second;
}

std::int64_t BlockScheduleCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t BlockScheduleCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void BlockScheduleCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace featgraph::sample
