// SIMD row-gather of input features into block-local tensors.
//
// Minibatch inference reads a scattered subset of the global feature matrix
// (one row per block input node) into a dense (num_src x d) tensor the
// kernels can stream. The inner copy is the `gather_rows` span primitive
// (core/simd.hpp) — exact class, bit-for-bit across scalar/AVX2/AVX-512, so
// the gathered tensor is bitwise the corresponding rows of the source and
// block kernels see exactly the bytes full-graph kernels would.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::sample {

/// Returns the (rows.size() x d) tensor whose row i is features.row(rows[i]).
/// Threaded over the row list when num_threads > 1 (each lane gathers a
/// contiguous slice — race-free, output rows are disjoint).
tensor::Tensor gather_rows(const tensor::Tensor& features,
                           const std::vector<graph::vid_t>& rows,
                           int num_threads = 1);

}  // namespace featgraph::sample
