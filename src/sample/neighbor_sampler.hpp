// Seeded, deterministic uniform k-hop neighbor sampling over graph::Csr —
// the minibatch front end of every serving-scale GNN system (DGL's
// NeighborSampler, GraphSAGE's fanout sampling).
//
// Determinism contract: the sampled blocks are a pure function of
// (graph, config.seed, batch_index, seeds). Each (batch, hop, destination
// VERTEX) triple draws from its OWN splittable RNG stream (support::Rng's
// (seed, stream) constructor), so results do not depend on how many threads
// run the pipeline, in which order batches are produced, what was sampled
// before — the property Pipeline.DeterministicAcrossPipelineThreads pins —
// or WHERE in the seed list a vertex sits. That last invariance is what the
// multi-tenant coalescer (src/serve) builds on: merging several requests'
// seed lists into one batch leaves every vertex's sampled neighborhood
// bit-identical to serving its request alone under the same batch_index.
//
// Fanout semantics per destination row of in-degree deg:
//   * fanout < 0  — full neighborhood, all deg edges in CSR order (no RNG
//     draw at all, so full-fanout blocks are identical under ANY seed and
//     reproduce full-graph kernels bit-for-bit);
//   * without replacement — min(deg, fanout) DISTINCT edges (Floyd's
//     algorithm), emitted in ascending CSR position order;
//   * with replacement — exactly fanout draws (deg > 0), ascending order,
//     duplicates allowed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "sample/block.hpp"

namespace featgraph::sample {

struct SamplerConfig {
  /// Per-layer fanouts, input layer first (fanouts.size() == number of
  /// layers == number of blocks). fanout < 0 means full neighborhood.
  std::vector<std::int64_t> fanouts;
  /// Sample with replacement (duplicates allowed, exactly `fanout` draws on
  /// non-empty rows).
  bool replace = false;
  /// Base seed of the splittable stream family.
  std::uint64_t seed = 1;
};

class NeighborSampler {
 public:
  /// `in_csr` must outlive the sampler (it is captured by reference — pass
  /// the graph's in-CSR, never a temporary).
  NeighborSampler(const graph::Csr& in_csr, SamplerConfig config);

  /// Samples the message-flow-graph blocks for one minibatch of seed
  /// (output) vertices. `batch_index` selects the RNG stream family, making
  /// the call a pure function of its arguments — callers may sample batches
  /// in any order, concurrently, and reproduce results exactly.
  ///
  /// `num_threads` > 1 runs each hop's per-destination draws shard-parallel
  /// (contiguous seed shards drained with work stealing, parallel/
  /// shard_exec.hpp). Results are bit-identical at ANY thread count by
  /// construction: every destination vertex draws from its own RNG stream
  /// and writes only its own slot, so lane assignment can't reorder or
  /// perturb anything — the standing determinism contract above, now
  /// load-bearing for parallel sampling too.
  MinibatchBlocks sample(const std::vector<graph::vid_t>& seeds,
                         std::uint64_t batch_index,
                         int num_threads = 1) const;

  const SamplerConfig& config() const { return config_; }
  const graph::Csr& graph() const { return *csr_; }

 private:
  const graph::Csr* csr_;
  SamplerConfig config_;
};

}  // namespace featgraph::sample
