#include "sample/feature_loader.hpp"

#include "core/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::sample {

tensor::Tensor gather_rows(const tensor::Tensor& features,
                           const std::vector<graph::vid_t>& rows,
                           int num_threads) {
  const std::int64_t d = features.row_size();
  const auto m = static_cast<std::int64_t>(rows.size());
  tensor::Tensor out({m, d});
  if (m == 0 || d == 0) return out;
  static obs::Counter& obs_gathers =
      obs::Registry::global().counter("gather.rows.count");
  static obs::Counter& obs_bytes =
      obs::Registry::global().counter("gather.bytes.copied");
  obs_gathers.add(m);
  obs_bytes.add(m * d * static_cast<std::int64_t>(sizeof(float)));
  FG_TRACE_SCOPE("gather.rows", obs::arg("rows", m), obs::arg("d", d));
  const std::int64_t n = features.rows();
  // Dispatch hoisted per launch, width-aware like the kernel templates: a
  // d < 16 gather resolves the AVX2 table outright.
  const simd::SpanOps& ops = simd::span_ops_for_width(d);
  parallel::parallel_for_ranges(
      0, m, num_threads, [&](std::int64_t r0, std::int64_t r1) {
        // Bounds check folded into the lane (it used to be an O(m) serial
        // prefix that large multi-request gathers serialized on): each lane
        // validates its whole slice in index order BEFORE copying a byte,
        // so a bad id aborts with the same message as ever and never after
        // a partial gather of its slice.
        for (std::int64_t i = r0; i < r1; ++i) {
          const graph::vid_t r = rows[static_cast<std::size_t>(i)];
          FG_CHECK_MSG(r >= 0 && r < n, "gather row out of range");
        }
        simd::gather_rows(ops, out.data() + r0 * d, features.data(),
                          rows.data() + r0, r1 - r0, d);
      });
  return out;
}

}  // namespace featgraph::sample
