#include "sample/feature_loader.hpp"

#include "core/simd.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::sample {

tensor::Tensor gather_rows(const tensor::Tensor& features,
                           const std::vector<graph::vid_t>& rows,
                           int num_threads) {
  const std::int64_t d = features.row_size();
  const auto m = static_cast<std::int64_t>(rows.size());
  tensor::Tensor out({m, d});
  if (m == 0 || d == 0) return out;
  const std::int64_t n = features.rows();
  for (const graph::vid_t r : rows)
    FG_CHECK_MSG(r >= 0 && r < n, "gather row out of range");
  // Dispatch hoisted per launch, width-aware like the kernel templates: a
  // d < 16 gather resolves the AVX2 table outright.
  const simd::SpanOps& ops = simd::span_ops_for_width(d);
  parallel::parallel_for_ranges(
      0, m, num_threads, [&](std::int64_t r0, std::int64_t r1) {
        simd::gather_rows(ops, out.data() + r0 * d, features.data(),
                          rows.data() + r0, r1 - r0, d);
      });
  return out;
}

}  // namespace featgraph::sample
