#include "sample/neighbor_sampler.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/shard_exec.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::sample {

namespace {

/// Stream id of one (batch, hop, destination-VERTEX) draw: three chained
/// SplitMix64 avalanches so no two triples share a stream in practice, and
/// the id depends on nothing but the triple — the order-independence the
/// determinism contract rests on. Keying on the vertex id (not the
/// destination's position in the seed list) makes a vertex's sampled
/// neighborhood invariant to where it appears in the batch, which is what
/// lets the serving coalescer merge seed lists across requests and still
/// reproduce each request's solo sampling bit-for-bit (src/serve).
std::uint64_t stream_of(std::uint64_t batch, std::uint64_t hop,
                        std::uint64_t vertex) {
  std::uint64_t s = support::splitmix64(batch);
  s = support::splitmix64(s ^ (hop + 0x9e3779b97f4a7c15ULL));
  return support::splitmix64(s ^ vertex);
}

/// Chooses the sampled CSR positions [0, deg) for one destination row,
/// ascending (CSR order preserved — full fanout reproduces the row
/// verbatim).
std::vector<std::int64_t> pick_positions(std::int64_t deg, std::int64_t fanout,
                                         bool replace, support::Rng& rng) {
  std::vector<std::int64_t> pos;
  if (deg == 0) return pos;
  if (fanout < 0 || (!replace && deg <= fanout)) {
    // Full neighborhood: no RNG consumed, CSR order verbatim.
    pos.resize(static_cast<std::size_t>(deg));
    for (std::int64_t p = 0; p < deg; ++p)
      pos[static_cast<std::size_t>(p)] = p;
    return pos;
  }
  pos.reserve(static_cast<std::size_t>(fanout));
  if (replace) {
    for (std::int64_t k = 0; k < fanout; ++k)
      pos.push_back(
          static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(deg))));
  } else {
    // Floyd's algorithm: `fanout` DISTINCT positions in [0, deg) with
    // exactly `fanout` uniform draws. Membership is a linear scan of the
    // <= fanout picks so far — fanouts are small and bounded, and this is
    // the producer lane's hot path, so no per-row hash set allocation.
    for (std::int64_t j = deg - fanout; j < deg; ++j) {
      const auto t = static_cast<std::int64_t>(
          rng.uniform(static_cast<std::uint64_t>(j) + 1));
      const bool taken = std::find(pos.begin(), pos.end(), t) != pos.end();
      pos.push_back(taken ? j : t);
    }
  }
  std::sort(pos.begin(), pos.end());
  return pos;
}

}  // namespace

NeighborSampler::NeighborSampler(const graph::Csr& in_csr,
                                 SamplerConfig config)
    : csr_(&in_csr), config_(std::move(config)) {
  FG_CHECK_MSG(!config_.fanouts.empty(),
               "sampler needs at least one per-layer fanout");
}

MinibatchBlocks NeighborSampler::sample(const std::vector<graph::vid_t>& seeds,
                                        std::uint64_t batch_index,
                                        int num_threads) const {
  FG_CHECK(num_threads >= 1);
  const int num_layers = static_cast<int>(config_.fanouts.size());
  static obs::Counter& obs_samples =
      obs::Registry::global().counter("sample.khop.count");
  static obs::Counter& obs_seeds =
      obs::Registry::global().counter("sample.seeds.expanded");
  obs_samples.add(1);
  obs_seeds.add(static_cast<std::int64_t>(seeds.size()));
  FG_TRACE_SCOPE("sample.khop",
                 obs::arg("seeds", static_cast<std::int64_t>(seeds.size())),
                 obs::arg("layers", num_layers));
  MinibatchBlocks mfg;
  mfg.blocks.resize(static_cast<std::size_t>(num_layers));

  // Sample outward from the seeds: the LAST layer's block first, its source
  // frontier becoming the next (earlier) layer's destinations.
  std::vector<graph::vid_t> dst = seeds;
  for (int layer = num_layers - 1; layer >= 0; --layer) {
    const std::int64_t fanout = config_.fanouts[static_cast<std::size_t>(layer)];
    const std::uint64_t hop =
        static_cast<std::uint64_t>(num_layers - 1 - layer);
    std::vector<std::vector<std::int64_t>> picked(dst.size());
    const auto sample_range = [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const graph::vid_t v = dst[static_cast<std::size_t>(i)];
        FG_CHECK_MSG(v >= 0 && v < csr_->num_rows,
                     "minibatch seed out of range");
        support::Rng rng(config_.seed,
                         stream_of(batch_index, hop,
                                   static_cast<std::uint64_t>(v)));
        picked[static_cast<std::size_t>(i)] =
            pick_positions(csr_->degree(v), fanout, config_.replace, rng);
      }
    };
    const auto n = static_cast<std::int64_t>(dst.size());
    if (num_threads <= 1 || n < 2) {
      sample_range(0, n);
    } else {
      // Shard-local sampling with cross-shard stealing: destinations split
      // into contiguous shards (a destination writes only picked[i], and
      // its RNG stream depends only on the vertex id, so any lane-to-shard
      // assignment produces identical blocks). Over-decompose 4x per lane
      // so a shard of hub vertices migrates instead of straggling.
      const int shards = static_cast<int>(std::min<std::int64_t>(
          n, static_cast<std::int64_t>(4 * num_threads)));
      parallel::sharded_row_sweep(/*indptr=*/nullptr, n, shards,
                                  /*steal_grain=*/1, num_threads,
                                  sample_range);
    }
    mfg.blocks[static_cast<std::size_t>(layer)] =
        make_block(*csr_, std::move(dst), picked);
    dst = mfg.blocks[static_cast<std::size_t>(layer)].src_nodes;
  }
  return mfg;
}

}  // namespace featgraph::sample
