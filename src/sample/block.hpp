// Message-flow-graph (MFG) blocks — the bipartite adjacencies minibatch GNN
// systems (DGL, TF-GNN) run layers over instead of the full graph.
//
// A Block is the sampled 1-hop neighborhood of a set of DESTINATION vertices,
// relabeled into a compact local id space:
//
//   * dst nodes get local ids [0, num_dst) in seed order;
//   * src nodes are the dst nodes FIRST (same ids — the "dst-then-src"
//     invariant: block source row v < num_dst holds the features of
//     destination v, which is what a SAGE/GCN self term reads), followed by
//     the newly sampled neighbors in first-appearance order.
//
// The block adjacency is a regular destination-major graph::Csr over the
// local ids (num_rows = num_dst, num_cols = num_src) whose edge_ids keep the
// ORIGINAL graph edge ids, so it is a drop-in adjacency for generalized_spmm,
// core::attention, and every edge-feature-indexed kernel in the repo. With a
// full fanout the per-row neighbor order is exactly the original CSR's row
// order, which is what makes full-fanout block inference bit-identical to
// full-graph inference.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::sample {

struct Block {
  /// Destination-major CSR over block-local ids; edge_ids are original graph
  /// edge ids.
  graph::Csr adj;
  /// Local src id -> original vertex id; src_nodes[i] == dst_nodes[i] for
  /// i < num_dst() (the dst-then-src invariant).
  std::vector<graph::vid_t> src_nodes;
  /// Local dst id -> original vertex id.
  std::vector<graph::vid_t> dst_nodes;

  graph::vid_t num_dst() const {
    return static_cast<graph::vid_t>(dst_nodes.size());
  }
  graph::vid_t num_src() const {
    return static_cast<graph::vid_t>(src_nodes.size());
  }
};

/// The per-layer blocks of one minibatch, input layer first: blocks[l] is
/// what layer l's aggregation runs over. Chained by construction:
/// blocks[l].dst_nodes == blocks[l + 1].src_nodes, so the (num_dst x d)
/// output of layer l is, row for row, the source tensor of layer l + 1.
struct MinibatchBlocks {
  std::vector<Block> blocks;

  /// Vertices whose input features must be gathered (layer 0's sources).
  const std::vector<graph::vid_t>& input_nodes() const {
    return blocks.front().src_nodes;
  }
  /// The minibatch seeds (last layer's destinations).
  const std::vector<graph::vid_t>& output_nodes() const {
    return blocks.back().dst_nodes;
  }
};

/// Builds one block from per-destination sampled edges. `dst` lists the
/// destination vertices (must be duplicate-free); `picked[i]` holds the
/// chosen positions into `g`'s row dst[i] (ascending for CSR-order
/// preservation; the sampler guarantees this). De-dup and dst-then-src
/// relabeling happen here.
Block make_block(const graph::Csr& g, std::vector<graph::vid_t> dst,
                 const std::vector<std::vector<std::int64_t>>& picked);

}  // namespace featgraph::sample
