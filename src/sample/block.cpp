#include "sample/block.hpp"

#include <unordered_map>
#include <utility>

#include "support/check.hpp"

namespace featgraph::sample {

Block make_block(const graph::Csr& g, std::vector<graph::vid_t> dst,
                 const std::vector<std::vector<std::int64_t>>& picked) {
  FG_CHECK(picked.size() == dst.size());
  Block b;
  b.dst_nodes = std::move(dst);
  b.src_nodes = b.dst_nodes;  // dst-then-src: destinations lead the sources

  // Relabel map over original ids. Built from dst first (their local ids are
  // their positions), then extended by first appearance while scanning the
  // sampled edges in (row, position) order — deterministic for a fixed
  // sample, independent of hash iteration order (the map is only probed,
  // never iterated).
  std::unordered_map<graph::vid_t, graph::vid_t> local;
  local.reserve(b.src_nodes.size() * 2 + 16);
  for (std::size_t i = 0; i < b.dst_nodes.size(); ++i) {
    const bool fresh =
        local.emplace(b.dst_nodes[i], static_cast<graph::vid_t>(i)).second;
    FG_CHECK_MSG(fresh, "block destinations must be duplicate-free");
  }

  std::int64_t total = 0;
  for (const auto& row : picked) total += static_cast<std::int64_t>(row.size());

  b.adj.num_rows = b.num_dst();
  b.adj.indptr.reserve(b.dst_nodes.size() + 1);
  b.adj.indptr.push_back(0);
  b.adj.indices.reserve(static_cast<std::size_t>(total));
  b.adj.edge_ids.reserve(static_cast<std::size_t>(total));

  for (std::size_t i = 0; i < b.dst_nodes.size(); ++i) {
    const graph::vid_t v = b.dst_nodes[i];
    const std::int64_t lo = g.indptr[static_cast<std::size_t>(v)];
    const std::int64_t hi = g.indptr[static_cast<std::size_t>(v) + 1];
    (void)hi;  // only read by the debug bound check below
    for (const std::int64_t p : picked[i]) {
      FG_DCHECK(p >= 0 && lo + p < hi);
      const graph::vid_t u = g.indices[static_cast<std::size_t>(lo + p)];
      auto [it, fresh] =
          local.try_emplace(u, static_cast<graph::vid_t>(b.src_nodes.size()));
      if (fresh) b.src_nodes.push_back(u);
      b.adj.indices.push_back(it->second);
      b.adj.edge_ids.push_back(g.edge_ids[static_cast<std::size_t>(lo + p)]);
    }
    b.adj.indptr.push_back(static_cast<std::int64_t>(b.adj.indices.size()));
  }
  b.adj.num_cols = b.num_src();
  return b;
}

}  // namespace featgraph::sample
