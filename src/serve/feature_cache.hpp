// Bounded frequency/LRU feature-row cache fronting FeatureLoader's
// gather_rows — the hot-vertex absorber of the serving front-end.
//
// Feature gather is the dominant memory-bound phase of GNN inference (the
// GNN computer-architecture survey in PAPERS.md), and power-law traffic
// concentrates it on a few high-degree vertices: every request whose
// frontier touches a hub re-reads the same feature row from the global
// matrix. A small cache keyed on ORIGINAL vertex id in front of the gather
// serves those rows from its own arena; only the cold remainder pays the
// global gather (which still runs the SIMD gather_rows span primitive —
// cache fills use the very same primitive, so a cached row is a bitwise
// copy and cache-on vs cache-off outputs are identical to the bit,
// Serve.FeatureCacheOnOffBitIdentical).
//
// Replacement is frequency-GUARDED LRU: eviction order is least-recently-
// used, but admission of a missed row requires its running access count to
// be at least the LRU victim's — a one-shot scan of cold vertices cannot
// flush the resident hot set (the classic LRU failure mode under zipfian
// traffic). Access counts age by halving every 32x-capacity accesses, so
// "hot" means hot RECENTLY. Capacity 0 disables the cache (pure
// pass-through to gather_rows).
//
// Counters mirror BlockScheduleCache's stats discipline: hits / misses /
// bytes_saved (feature bytes served from the arena instead of the global
// gather) / insertions / evictions, all behind the same lock as the data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <mutex>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::serve {

class FeatureCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    /// Bytes the global gather did NOT read because the row was resident.
    std::int64_t bytes_saved = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
  };

  /// `capacity_rows` bounds the arena (0 disables caching); `feat_width` is
  /// the row width every gathered tensor must have.
  FeatureCache(std::int64_t capacity_rows, std::int64_t feat_width);

  /// Drop-in for sample::gather_rows(features, rows, num_threads): returns
  /// the (rows.size() x feat_width) tensor whose row i is
  /// features.row(rows[i]), bit-for-bit — hits are bitwise copies from the
  /// arena, misses run the SIMD gather_rows primitive and hot ones are
  /// admitted for next time. Thread-safe; concurrent gathers serialize on
  /// the probe/copy phases but run their miss gathers in parallel.
  tensor::Tensor gather(const tensor::Tensor& features,
                        const std::vector<graph::vid_t>& rows,
                        int num_threads = 1);

  Stats stats() const;
  void reset_stats();
  /// Rows currently resident (<= capacity).
  std::int64_t size() const;
  std::int64_t capacity() const { return capacity_; }
  std::int64_t feat_width() const { return width_; }

 private:
  /// Unlinks slot from the LRU list. Caller holds mutex_.
  void lru_unlink(std::int64_t slot);
  /// Links slot at the most-recently-used head. Caller holds mutex_.
  void lru_push_front(std::int64_t slot);
  /// Bumps the access count of vertex v, aging every 32x-capacity accesses.
  std::uint32_t bump_freq(graph::vid_t v);

  const std::int64_t capacity_;
  const std::int64_t width_;

  mutable std::mutex mutex_;
  tensor::Tensor arena_;                              // capacity x width
  std::unordered_map<graph::vid_t, std::int64_t> slot_of_;
  std::vector<graph::vid_t> vertex_of_;               // slot -> vertex
  // Intrusive doubly-linked LRU over slot ids (-1 = none).
  std::vector<std::int64_t> lru_prev_, lru_next_;
  std::int64_t lru_head_ = -1, lru_tail_ = -1;
  std::int64_t used_ = 0;
  std::unordered_map<graph::vid_t, std::uint32_t> freq_;
  std::int64_t accesses_since_age_ = 0;
  Stats stats_;
};

}  // namespace featgraph::serve
