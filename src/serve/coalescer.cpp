#include "serve/coalescer.hpp"

#include <cstring>
#include <unordered_map>
#include <utility>

#include "support/check.hpp"

namespace featgraph::serve {

CoalescedBatch coalesce(std::vector<Request> requests) {
  CoalescedBatch batch;
  batch.requests = std::move(requests);
  batch.row_of.resize(batch.requests.size());

  // First-appearance dedup, the same discipline make_block uses for source
  // relabeling: the map is only probed, never iterated, so the merged order
  // is deterministic for a fixed request order.
  std::unordered_map<graph::vid_t, std::int64_t> row_of_vertex;
  std::size_t total = 0;
  for (const Request& r : batch.requests) total += r.seeds.size();
  row_of_vertex.reserve(total * 2 + 16);

  for (std::size_t r = 0; r < batch.requests.size(); ++r) {
    const Request& req = batch.requests[r];
    auto& rows = batch.row_of[r];
    rows.reserve(req.seeds.size());
    // Per-request duplicate guard: solo serving would trip make_block's
    // duplicate-free destination check, so the coalesced path holds the
    // same precondition rather than silently serving what solo cannot.
    std::unordered_map<graph::vid_t, bool> seen_here;
    seen_here.reserve(req.seeds.size() * 2);
    for (const graph::vid_t s : req.seeds) {
      FG_CHECK_MSG(seen_here.emplace(s, true).second,
                   "request seeds must be duplicate-free within one request");
      const auto [it, fresh] = row_of_vertex.try_emplace(
          s, static_cast<std::int64_t>(batch.seeds.size()));
      if (fresh)
        batch.seeds.push_back(s);
      else
        ++batch.shared_seed_rows;
      rows.push_back(it->second);
    }
  }
  return batch;
}

std::vector<tensor::Tensor> scatter_back(const CoalescedBatch& batch,
                                         const tensor::Tensor& merged_out) {
  FG_CHECK_MSG(merged_out.rows() ==
                   static_cast<std::int64_t>(batch.seeds.size()),
               "merged output must hold one row per merged seed");
  const std::int64_t d = merged_out.row_size();
  std::vector<tensor::Tensor> outs;
  outs.reserve(batch.requests.size());
  for (std::size_t r = 0; r < batch.requests.size(); ++r) {
    const auto& rows = batch.row_of[r];
    tensor::Tensor out({static_cast<std::int64_t>(rows.size()), d});
    for (std::size_t k = 0; k < rows.size(); ++k)
      std::memcpy(out.row(static_cast<std::int64_t>(k)),
                  merged_out.row(rows[k]),
                  static_cast<std::size_t>(d) * sizeof(float));
    outs.push_back(std::move(out));
  }
  return outs;
}

}  // namespace featgraph::serve
