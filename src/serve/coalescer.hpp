// Cross-request coalescing — the pure half of the multi-tenant serving
// front-end (src/serve/server.hpp is the concurrent half).
//
// A production GNN service receives millions of small concurrent queries,
// each a set of seed vertices wanting their model outputs (TF-GNN's
// serving framing: the unit of work is a per-request seed set, not an
// epoch). Serving each request alone wastes the memory-bound phases —
// power-law traffic concentrates on a few hot vertices, so concurrent
// requests overlap heavily in seeds AND in sampled frontiers. The
// coalescer merges whatever arrived within the admission window into ONE
// minibatch:
//
//   requests    r0: [a, b]   r1: [b, c]   r2: [a]
//   merged seeds     [a, b, c]            (first appearance, deduped)
//   row_of           r0 -> {0, 1}  r1 -> {1, 2}  r2 -> {0}
//
// One shared sample -> gather -> compute pass then serves every request;
// scatter_back copies each request its output rows. Frontier dedup across
// requests comes for free: the merged seed list flows through the existing
// MinibatchBlocks relabeling, whose first-appearance de-dup collapses the
// shared neighborhoods the same way it collapses shared neighbors inside
// one batch.
//
// Determinism: because the neighbor sampler keys its RNG streams on
// (batch, hop, destination VERTEX) — not seed position — and block SpMM
// accumulates each destination row independently in CSR row order
// (num_partitions pinned 1 on the serving path), every per-request output
// row of the coalesced batch is BIT-IDENTICAL to serving that request
// alone under the same sampler stream (Serve.CoalescedMatchesSoloBitForBit
// pins this per ISA).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::serve {

/// One tenant query: a small set of seed (output) vertices. Seeds must be
/// duplicate-free WITHIN a request — the same precondition solo serving has
/// (block destinations are duplicate-free); duplicates ACROSS requests are
/// exactly what the coalescer dedups.
struct Request {
  std::int64_t id = 0;
  std::vector<graph::vid_t> seeds;
};

/// A group of requests merged into one shared minibatch.
struct CoalescedBatch {
  std::vector<Request> requests;
  /// Merged seed list: first-appearance order over the concatenated request
  /// seed lists, duplicate-free — the dst list of the shared sample.
  std::vector<graph::vid_t> seeds;
  /// row_of[r][k] = row of the merged output holding requests[r].seeds[k].
  std::vector<std::vector<std::int64_t>> row_of;
  /// Seed rows saved by cross-request dedup (sum of request seed counts
  /// minus merged rows) — sampling + gather + compute skipped entirely.
  std::int64_t shared_seed_rows = 0;

  std::int64_t total_request_seeds() const {
    return static_cast<std::int64_t>(seeds.size()) + shared_seed_rows;
  }
};

/// Merges `requests` into one batch (see file comment for the row mapping).
CoalescedBatch coalesce(std::vector<Request> requests);

/// Splits the merged (batch.seeds.size() x d) output back per request:
/// result[r].row(k) is bitwise merged_out.row(batch.row_of[r][k]).
std::vector<tensor::Tensor> scatter_back(const CoalescedBatch& batch,
                                         const tensor::Tensor& merged_out);

}  // namespace featgraph::serve
