// Multi-tenant request admission: concurrent queries -> coalesced batches.
//
//   tenants                    admission queue              serving lane
//   submit(seeds) ──┐   ┌──────────────────────────┐   ┌────────────────────┐
//   submit(seeds) ──┼──▶│ pending requests; window │──▶│ coalesce -> sample │
//   submit(seeds) ──┘   │ closes at oldest arrival │   │ -> gather (feature │
//        ...            │ + latency_bound, or when │   │ cache) -> compute  │
//     future<Tensor>◀───│ request/seed caps fill   │   │ -> scatter_back    │
//                       └──────────────────────────┘   └────────────────────┘
//
// Latency-bound semantics: the admission window is anchored at the OLDEST
// pending request's arrival — a request waits at most latency_bound_s for
// co-travellers before its batch is cut, and the window closes early when
// the request or seed cap fills. Under backlog (the serving lane busy past
// the window) everything that arrived meanwhile joins the next batch, which
// is what makes coalescing self-reinforcing exactly when load is highest.
//
// The serving lane runs on the ThreadPool via launch_detached_if_idle —
// the same atomic claim discipline as the sampling pipeline's 2-lane
// overlap; a declined claim (slot busy, or a worker-less pool) falls back
// to a dedicated thread, so a Server always starts. ServingEngine is the
// synchronous core (one coalesced group in, per-request tensors out) shared
// by the async Server, the deterministic Trainer::serve_requests entry
// point, and replay_trace — the open-loop arrival replay bench_serving uses
// to measure p50/p99 latency with REAL per-batch service times on any host,
// single-core included.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sample/neighbor_sampler.hpp"
#include "serve/coalescer.hpp"
#include "serve/feature_cache.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::serve {

struct ServeOptions {
  /// Seconds a pending request may wait for co-travellers (window anchored
  /// at the oldest pending arrival). 0 = cut a batch as soon as the lane is
  /// free (still coalesces whatever queued up behind a busy lane).
  double latency_bound_s = 1e-3;
  /// Admission caps: a batch is cut early once either fills.
  int max_requests_per_batch = 64;
  std::int64_t max_seeds_per_batch = 8192;
  /// Threads for the shard-parallel sampling plus the shared gather +
  /// scatter inside the serving lane. Sampling stays bit-identical at any
  /// value (per-vertex RNG streams, see neighbor_sampler.hpp), and because
  /// the lane runs DETACHED these nested launches recruit real pool
  /// workers — unlike the pipeline's attached 2-lane overlap.
  int num_threads = 1;
  /// Sampler stream (batch_index) EVERY request is served under — solo and
  /// coalesced serving share it, which (with per-vertex RNG streams) is
  /// what pins their outputs bit-identical.
  std::uint64_t rng_stream = 0;
};

struct ServeStats {
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  /// Total seed rows requested / actually sampled+computed after dedup.
  std::int64_t seed_rows = 0;
  std::int64_t merged_rows = 0;
  std::int64_t shared_seed_rows = 0;
  std::int64_t max_batch_requests = 0;
  double sample_seconds = 0.0;
  double gather_seconds = 0.0;
  double compute_seconds = 0.0;
};

/// Block compute of one coalesced batch: gets the shared blocks and the
/// gathered input features (one row per blocks.input_nodes() entry), returns
/// one output row per merged seed (blocks.output_nodes()), in order.
using BatchComputeFn = std::function<tensor::Tensor(
    const sample::MinibatchBlocks& blocks, tensor::Tensor input_feats)>;

/// The synchronous serving core: coalesce -> sample -> gather -> compute ->
/// scatter_back, with stats. Thread-safe: stats are per-instance lock-free
/// atomics (obs::Counter/Gauge), so a caller polling stats() while the
/// DETACHED serving lane is mid-batch reads torn-free values without a lock
/// — the old single-mutex scheme serialized the lane's stats update against
/// monitoring reads, and a reader between two phase-field writes could see
/// a half-updated batch. Phase times accumulate as integer nanoseconds
/// (Timer::elapsed_ns); stats() converts to the same seconds fields as
/// before, so the ServeStats API is unchanged.
class ServingEngine {
 public:
  /// `sampler` and `features` must outlive the engine; `cache` may be null
  /// (no feature cache — every gather goes to the global matrix).
  ServingEngine(const sample::NeighborSampler& sampler,
                const tensor::Tensor& features, BatchComputeFn compute,
                ServeOptions options, FeatureCache* cache = nullptr);

  /// Serves one coalesced group; outs[r] holds requests[r]'s rows, bitwise
  /// what serving that request alone would produce.
  std::vector<tensor::Tensor> serve_batch(std::vector<Request> requests);

  const ServeOptions& options() const { return options_; }
  FeatureCache* feature_cache() const { return cache_; }
  ServeStats stats() const;
  void reset_stats();

 private:
  const sample::NeighborSampler* sampler_;
  const tensor::Tensor* features_;
  BatchComputeFn compute_;
  ServeOptions options_;
  FeatureCache* cache_;
  obs::Counter requests_;
  obs::Counter batches_;
  obs::Counter seed_rows_;
  obs::Counter merged_rows_;
  obs::Counter shared_seed_rows_;
  obs::Gauge max_batch_requests_;  // set_max: monotone high-water
  obs::Counter sample_ns_;
  obs::Counter gather_ns_;
  obs::Counter compute_ns_;
};

/// The concurrent admission front-end: tenants submit seed sets from any
/// thread and get a future for their output rows; one serving lane drains
/// the queue in coalesced batches under the latency bound.
class Server {
 public:
  explicit Server(ServingEngine& engine);
  ~Server();  // close() + join

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request; the future resolves to its (seeds.size() x d)
  /// output rows once its batch is served. Must not be called after
  /// close().
  std::future<tensor::Tensor> submit(std::vector<graph::vid_t> seeds);

  /// Stops admission, drains every pending request, joins the lane.
  /// Idempotent.
  void close();

  /// Whether the serving lane claimed a pool worker (vs the dedicated
  /// fallback thread).
  bool lane_on_pool() const { return lane_on_pool_; }

 private:
  void drain_loop();

  ServingEngine& engine_;
  bool lane_on_pool_ = false;
  std::thread fallback_thread_;

  struct Pending {
    Request request;
    std::promise<tensor::Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
  };
  mutable std::mutex mutex_;
  std::condition_variable admission_cv_;
  std::condition_variable lane_exited_cv_;
  std::deque<Pending> pending_;
  std::int64_t next_id_ = 0;
  bool closed_ = false;
  bool lane_exited_ = false;
};

/// One request of an open-loop arrival trace (arrival measured from t = 0).
struct TraceRequest {
  Request request;
  double arrival_s = 0.0;
};

struct TraceResult {
  /// Per trace entry, in trace order.
  std::vector<tensor::Tensor> outputs;
  std::vector<double> latency_s;
  std::int64_t batches = 0;
  /// Simulated completion time of the last request.
  double makespan_s = 0.0;
  double queries_per_second = 0.0;
};

/// Replays `trace` against the engine under its admission options, FIFO,
/// single serving lane: batches are formed exactly as the live Server would
/// (window anchored at the oldest pending arrival, early cut on caps,
/// backlog joins the next batch), service times are REAL measured
/// serve_batch wall times, and per-request latency = completion - arrival
/// on the simulated clock. Deterministic outputs; honest latency on any
/// host, including single-core ones where a live open-loop driver and the
/// serving lane would fight over the same CPU.
TraceResult replay_trace(ServingEngine& engine,
                         const std::vector<TraceRequest>& trace);

/// p-th percentile (0 <= p <= 100, nearest-rank) of `values`; 0 on empty.
double percentile(std::vector<double> values, double p);

}  // namespace featgraph::serve
