#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sample/feature_loader.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace featgraph::serve {

namespace {

/// Seconds a request sat in admission before its batch started serving
/// (live drain_loop: wall clock; replay_trace: the simulated clock — both
/// feed the same histogram, so bench and live runs render comparably).
obs::Histogram& queue_latency_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("serve.queue_latency.seconds");
  return h;
}

}  // namespace

ServingEngine::ServingEngine(const sample::NeighborSampler& sampler,
                             const tensor::Tensor& features,
                             BatchComputeFn compute, ServeOptions options,
                             FeatureCache* cache)
    : sampler_(&sampler),
      features_(&features),
      compute_(std::move(compute)),
      options_(options),
      cache_(cache) {
  FG_CHECK(options_.latency_bound_s >= 0.0);
  FG_CHECK(options_.max_requests_per_batch >= 1);
  FG_CHECK(options_.max_seeds_per_batch >= 1);
}

std::vector<tensor::Tensor> ServingEngine::serve_batch(
    std::vector<Request> requests) {
  if (requests.empty()) return {};
  obs::TraceScope batch_span("serve.batch");

  CoalescedBatch batch = [&] {
    FG_TRACE_SCOPE("serve.coalesce",
                   obs::arg("requests",
                            static_cast<std::int64_t>(requests.size())));
    return coalesce(std::move(requests));
  }();
  if (batch_span.active()) {
    batch_span
        .arg("requests", static_cast<std::int64_t>(batch.requests.size()))
        .arg("seed_rows", batch.total_request_seeds())
        .arg("merged_rows", static_cast<std::int64_t>(batch.seeds.size()))
        .arg("shared_rows", batch.shared_seed_rows);
  }

  support::Timer t;
  const sample::MinibatchBlocks blocks = [&] {
    FG_TRACE_SCOPE("serve.sample");
    return sampler_->sample(batch.seeds, options_.rng_stream,
                            options_.num_threads);
  }();
  const std::int64_t sample_ns = t.elapsed_ns();

  t.reset();
  tensor::Tensor input_feats = [&] {
    FG_TRACE_SCOPE("serve.gather");
    return cache_ != nullptr
               ? cache_->gather(*features_, blocks.input_nodes(),
                                options_.num_threads)
               : sample::gather_rows(*features_, blocks.input_nodes(),
                                     options_.num_threads);
  }();
  const std::int64_t gather_ns = t.elapsed_ns();

  t.reset();
  const tensor::Tensor merged_out = [&] {
    FG_TRACE_SCOPE("serve.compute");
    return compute_(blocks, std::move(input_feats));
  }();
  const std::int64_t compute_ns = t.elapsed_ns();
  FG_CHECK_MSG(merged_out.rows() ==
                   static_cast<std::int64_t>(batch.seeds.size()),
               "batch compute must return one row per merged seed");

  std::vector<tensor::Tensor> outs = [&] {
    FG_TRACE_SCOPE("serve.scatter");
    return scatter_back(batch, merged_out);
  }();

  // Per-instance atomics (no lock): the detached lane bumps these while a
  // monitor thread reads stats() — every field is torn-free on its own.
  requests_.add(static_cast<std::int64_t>(batch.requests.size()));
  batches_.add(1);
  seed_rows_.add(batch.total_request_seeds());
  merged_rows_.add(static_cast<std::int64_t>(batch.seeds.size()));
  shared_seed_rows_.add(batch.shared_seed_rows);
  max_batch_requests_.set_max(static_cast<std::int64_t>(batch.requests.size()));
  sample_ns_.add(sample_ns);
  gather_ns_.add(gather_ns);
  compute_ns_.add(compute_ns);

  // Process-wide mirror for profile reports.
  static obs::Counter& g_requests =
      obs::Registry::global().counter("serve.request.count");
  static obs::Counter& g_batches =
      obs::Registry::global().counter("serve.batch.count");
  static obs::Counter& g_dedup =
      obs::Registry::global().counter("serve.rows.deduped");
  g_requests.add(static_cast<std::int64_t>(batch.requests.size()));
  g_batches.add(1);
  g_dedup.add(batch.total_request_seeds() -
              static_cast<std::int64_t>(batch.seeds.size()));
  return outs;
}

ServeStats ServingEngine::stats() const {
  ServeStats s;
  s.requests = requests_.value();
  s.batches = batches_.value();
  s.seed_rows = seed_rows_.value();
  s.merged_rows = merged_rows_.value();
  s.shared_seed_rows = shared_seed_rows_.value();
  s.max_batch_requests = max_batch_requests_.value();
  s.sample_seconds = static_cast<double>(sample_ns_.value()) * 1e-9;
  s.gather_seconds = static_cast<double>(gather_ns_.value()) * 1e-9;
  s.compute_seconds = static_cast<double>(compute_ns_.value()) * 1e-9;
  return s;
}

void ServingEngine::reset_stats() {
  requests_.reset();
  batches_.reset();
  seed_rows_.reset();
  merged_rows_.reset();
  shared_seed_rows_.reset();
  max_batch_requests_.reset();
  sample_ns_.reset();
  gather_ns_.reset();
  compute_ns_.reset();
}

Server::Server(ServingEngine& engine) : engine_(engine) {
  // The serving lane prefers a pool worker — launch_detached_if_idle claims
  // the job slot atomically, exactly like the pipeline's 2-lane overlap.
  // Declined (slot held, worker-less pool) falls back to a dedicated
  // thread: admission is about latency, not CPU parallelism, so a plain
  // thread serves fine. Either way the lane's kernels may run parallel_for
  // freely (a held slot degrades nested launches to inline execution).
  lane_on_pool_ = parallel::ThreadPool::global().launch_detached_if_idle(
      1, [this](int, int) { drain_loop(); });
  if (!lane_on_pool_) fallback_thread_ = std::thread([this] { drain_loop(); });
}

Server::~Server() { close(); }

std::future<tensor::Tensor> Server::submit(std::vector<graph::vid_t> seeds) {
  std::future<tensor::Tensor> fut;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FG_CHECK_MSG(!closed_, "submit after Server::close");
    Pending p;
    p.request.id = next_id_++;
    p.request.seeds = std::move(seeds);
    p.arrival = std::chrono::steady_clock::now();
    fut = p.promise.get_future();
    pending_.push_back(std::move(p));
  }
  admission_cv_.notify_all();
  return fut;
}

void Server::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  admission_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    lane_exited_cv_.wait(lock, [this] { return lane_exited_; });
  }
  if (fallback_thread_.joinable()) fallback_thread_.join();
  // lane_exited_ is signalled from INSIDE drain_loop; the pool's job slot
  // is only released once the lane returns to worker_loop. Wait that out so
  // the slot is reclaimable (e.g. by the next Server) when close() returns.
  // Reset the flag so an idempotent re-close doesn't wait on some LATER
  // claimant's detached job.
  if (lane_on_pool_) {
    parallel::ThreadPool::global().wait_detached_drained();
    lane_on_pool_ = false;
  }
}

void Server::drain_loop() {
  const ServeOptions& opts = engine_.options();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    admission_cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
    if (pending_.empty()) break;  // closed and drained

    // Admission window: anchored at the oldest pending arrival, cut early
    // when a cap fills or the server closes (drain what's there).
    const auto window_end =
        pending_.front().arrival +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.latency_bound_s));
    auto caps_filled = [&] {
      if (static_cast<int>(pending_.size()) >= opts.max_requests_per_batch)
        return true;
      std::int64_t seeds = 0;
      for (const Pending& p : pending_) {
        seeds += static_cast<std::int64_t>(p.request.seeds.size());
        if (seeds >= opts.max_seeds_per_batch) return true;
      }
      return false;
    };
    while (!closed_ && !caps_filled() &&
           std::chrono::steady_clock::now() < window_end)
      admission_cv_.wait_until(lock, window_end);

    // Cut the batch: take pending requests in arrival order up to the caps.
    const auto cut_time = std::chrono::steady_clock::now();
    std::vector<Request> requests;
    std::vector<std::promise<tensor::Tensor>> promises;
    std::int64_t seeds_taken = 0;
    while (!pending_.empty() &&
           static_cast<int>(requests.size()) < opts.max_requests_per_batch &&
           (requests.empty() ||
            seeds_taken + static_cast<std::int64_t>(
                              pending_.front().request.seeds.size()) <=
                opts.max_seeds_per_batch)) {
      Pending p = std::move(pending_.front());
      pending_.pop_front();
      queue_latency_hist().observe(
          std::chrono::duration<double>(cut_time - p.arrival).count());
      seeds_taken += static_cast<std::int64_t>(p.request.seeds.size());
      requests.push_back(std::move(p.request));
      promises.push_back(std::move(p.promise));
    }

    lock.unlock();
    std::vector<tensor::Tensor> outs = engine_.serve_batch(std::move(requests));
    for (std::size_t r = 0; r < promises.size(); ++r)
      promises[r].set_value(std::move(outs[r]));
    lock.lock();
  }
  // Signal exit while still holding the lock: notifying after unlock would
  // let close() observe the flag and the destructor reclaim the condition
  // variable while this lane is still inside notify_all (TSan-caught).
  lane_exited_ = true;
  lane_exited_cv_.notify_all();
}

TraceResult replay_trace(ServingEngine& engine,
                         const std::vector<TraceRequest>& trace) {
  const ServeOptions& opts = engine.options();
  TraceResult result;
  const std::size_t n = trace.size();
  result.outputs.resize(n);
  result.latency_s.resize(n, 0.0);
  if (n == 0) return result;
  for (std::size_t i = 1; i < n; ++i)
    FG_CHECK_MSG(trace[i].arrival_s >= trace[i - 1].arrival_s,
                 "trace arrivals must be sorted");

  double lane_free_at = 0.0;  // simulated clock the serving lane frees up
  std::size_t i = 0;
  while (i < n) {
    // The lane picks up the oldest pending request no earlier than its
    // arrival; the admission window then holds the batch open until
    // oldest-arrival + bound (or until a cap fills — handled by the
    // admission scan below, which also sweeps in the backlog that piled up
    // while the lane was busy).
    const double window_close = trace[i].arrival_s + opts.latency_bound_s;
    double start = std::max(lane_free_at, window_close);

    std::vector<Request> requests;
    std::int64_t seeds_taken = 0;
    std::size_t j = i;
    double capped_at = -1.0;  // arrival that filled a cap, if any
    while (j < n && trace[j].arrival_s <= start) {
      const auto sz = static_cast<std::int64_t>(trace[j].request.seeds.size());
      if (!requests.empty() && seeds_taken + sz > opts.max_seeds_per_batch) {
        // Seed cap: the overflowing arrival triggers the cut and stays
        // pending for the next batch.
        capped_at = trace[j].arrival_s;
        break;
      }
      seeds_taken += sz;
      requests.push_back(trace[j].request);
      ++j;
      if (static_cast<int>(requests.size()) >= opts.max_requests_per_batch) {
        // Request cap: the last ADMITTED arrival triggers the cut.
        capped_at = trace[j - 1].arrival_s;
        break;
      }
    }
    // A cap filled before the window closed: the live server cuts the batch
    // at the triggering arrival instead of idling out the window.
    if (capped_at >= 0.0) start = std::max(lane_free_at, capped_at);

    support::Timer t;
    std::vector<tensor::Tensor> outs = engine.serve_batch(std::move(requests));
    const double service_s = t.seconds();

    const double completion = start + service_s;
    for (std::size_t k = i; k < j; ++k) {
      result.outputs[k] = std::move(outs[k - i]);
      result.latency_s[k] = completion - trace[k].arrival_s;
      // Simulated admission wait — same histogram the live lane feeds.
      queue_latency_hist().observe(start - trace[k].arrival_s);
    }
    lane_free_at = completion;
    result.makespan_s = completion;
    ++result.batches;
    i = j;
  }
  result.queries_per_second =
      result.makespan_s > 0.0 ? static_cast<double>(n) / result.makespan_s
                              : 0.0;
  return result;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank: ceil(p/100 * n)-th value, 1-indexed
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

}  // namespace featgraph::serve
