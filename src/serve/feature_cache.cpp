#include "serve/feature_cache.hpp"

#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "sample/feature_loader.hpp"
#include "support/check.hpp"

namespace featgraph::serve {

FeatureCache::FeatureCache(std::int64_t capacity_rows, std::int64_t feat_width)
    : capacity_(capacity_rows), width_(feat_width) {
  FG_CHECK(capacity_ >= 0 && width_ >= 1);
  if (capacity_ > 0) {
    arena_ = tensor::Tensor({capacity_, width_});
    vertex_of_.assign(static_cast<std::size_t>(capacity_), -1);
    lru_prev_.assign(static_cast<std::size_t>(capacity_), -1);
    lru_next_.assign(static_cast<std::size_t>(capacity_), -1);
    slot_of_.reserve(static_cast<std::size_t>(capacity_) * 2);
  }
}

void FeatureCache::lru_unlink(std::int64_t slot) {
  const std::int64_t p = lru_prev_[static_cast<std::size_t>(slot)];
  const std::int64_t n = lru_next_[static_cast<std::size_t>(slot)];
  if (p >= 0)
    lru_next_[static_cast<std::size_t>(p)] = n;
  else
    lru_head_ = n;
  if (n >= 0)
    lru_prev_[static_cast<std::size_t>(n)] = p;
  else
    lru_tail_ = p;
  lru_prev_[static_cast<std::size_t>(slot)] = -1;
  lru_next_[static_cast<std::size_t>(slot)] = -1;
}

void FeatureCache::lru_push_front(std::int64_t slot) {
  lru_prev_[static_cast<std::size_t>(slot)] = -1;
  lru_next_[static_cast<std::size_t>(slot)] = lru_head_;
  if (lru_head_ >= 0) lru_prev_[static_cast<std::size_t>(lru_head_)] = slot;
  lru_head_ = slot;
  if (lru_tail_ < 0) lru_tail_ = slot;
}

std::uint32_t FeatureCache::bump_freq(graph::vid_t v) {
  // Age by halving every 32x-capacity ACCESSES, so the admission comparison
  // reflects RECENT popularity, not all-time totals (a vertex hot an hour
  // ago must not forever outrank today's hot set). Aging on accesses — not
  // on counter-table size — bounds the decay a burst of distinct cold
  // vertices can inflict: one scan cannot re-trigger halving per ~capacity
  // insertions and grind the resident hot set's counts to zero
  // (FeatureCache.FrequencyGuardKeepsHotRowsAgainstColdScan). The table
  // stays bounded too: non-resident zeroes are pruned at each aging, so at
  // most one window's worth of distinct vertices accumulates between prunes.
  if (++accesses_since_age_ >= capacity_ * 32) {
    accesses_since_age_ = 0;
    for (auto it = freq_.begin(); it != freq_.end();) {
      it->second /= 2;
      if (it->second == 0 && slot_of_.find(it->first) == slot_of_.end())
        it = freq_.erase(it);
      else
        ++it;
    }
  }
  return ++freq_[v];
}

tensor::Tensor FeatureCache::gather(const tensor::Tensor& features,
                                    const std::vector<graph::vid_t>& rows,
                                    int num_threads) {
  if (capacity_ == 0)  // disabled: pure pass-through
    return sample::gather_rows(features, rows, num_threads);
  FG_CHECK_MSG(features.row_size() == width_,
               "feature cache width mismatch with feature matrix");
  const std::int64_t d = width_;
  const auto m = static_cast<std::int64_t>(rows.size());
  tensor::Tensor out({m, d});
  if (m == 0) return out;

  // Phase 1, under the lock: probe every row; copy hits out of the arena
  // (bitwise — the arena row was filled by the same gather primitive) and
  // collect misses. Recency and frequency update on every access.
  std::vector<std::int64_t> miss_pos;
  std::vector<graph::vid_t> miss_vids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t i = 0; i < m; ++i) {
      const graph::vid_t v = rows[static_cast<std::size_t>(i)];
      bump_freq(v);
      const auto it = slot_of_.find(v);
      if (it != slot_of_.end()) {
        std::memcpy(out.row(i), arena_.row(it->second),
                    static_cast<std::size_t>(d) * sizeof(float));
        lru_unlink(it->second);
        lru_push_front(it->second);
        ++stats_.hits;
        stats_.bytes_saved += d * static_cast<std::int64_t>(sizeof(float));
      } else {
        miss_pos.push_back(i);
        miss_vids.push_back(v);
        ++stats_.misses;
      }
    }
  }
  // Registry mirror of the per-instance Stats (which stay the tested API):
  // one bulk add per gather, outside the lock.
  static obs::Counter& g_hits =
      obs::Registry::global().counter("cache.feature.hit");
  static obs::Counter& g_misses =
      obs::Registry::global().counter("cache.feature.miss");
  static obs::Counter& g_bytes =
      obs::Registry::global().counter("cache.feature.bytes_saved");
  const auto misses = static_cast<std::int64_t>(miss_vids.size());
  g_hits.add(m - misses);
  g_misses.add(misses);
  g_bytes.add((m - misses) * d * static_cast<std::int64_t>(sizeof(float)));
  if (miss_vids.empty()) return out;

  // Phase 2, no lock: one global gather of the cold remainder — the same
  // SIMD span primitive (and the same folded bounds check) the uncached
  // path runs, threaded over the miss list.
  const tensor::Tensor cold =
      sample::gather_rows(features, miss_vids, num_threads);

  // Phase 3: scatter the cold rows to their output positions.
  const auto nmiss = static_cast<std::int64_t>(miss_pos.size());
  parallel::parallel_for_ranges(
      0, nmiss, num_threads, [&](std::int64_t k0, std::int64_t k1) {
        for (std::int64_t k = k0; k < k1; ++k)
          std::memcpy(out.row(miss_pos[static_cast<std::size_t>(k)]),
                      cold.row(k),
                      static_cast<std::size_t>(d) * sizeof(float));
      });

  // Phase 4, under the lock: admit hot misses. Free slots fill first; a
  // full cache evicts the LRU victim only when the candidate's access
  // count has reached the victim's — one-shot cold scans bounce off the
  // resident hot set instead of flushing it.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t k = 0; k < nmiss; ++k) {
      const graph::vid_t v = miss_vids[static_cast<std::size_t>(k)];
      if (slot_of_.find(v) != slot_of_.end())
        continue;  // duplicate in this gather, or a concurrent fill
      std::int64_t slot;
      if (used_ < capacity_) {
        slot = used_++;
      } else {
        const std::int64_t victim = lru_tail_;
        const graph::vid_t victim_v =
            vertex_of_[static_cast<std::size_t>(victim)];
        const auto fit = freq_.find(v);
        const auto vit = freq_.find(victim_v);
        const std::uint32_t f_cand = fit == freq_.end() ? 0 : fit->second;
        const std::uint32_t f_vict = vit == freq_.end() ? 0 : vit->second;
        if (f_cand < f_vict) continue;  // not hot enough to displace
        lru_unlink(victim);
        slot_of_.erase(victim_v);
        ++stats_.evictions;
        slot = victim;
      }
      std::memcpy(arena_.row(slot), cold.row(k),
                  static_cast<std::size_t>(d) * sizeof(float));
      slot_of_.emplace(v, slot);
      vertex_of_[static_cast<std::size_t>(slot)] = v;
      lru_push_front(slot);
      ++stats_.insertions;
    }
  }
  return out;
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FeatureCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

std::int64_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(slot_of_.size());
}

}  // namespace featgraph::serve
