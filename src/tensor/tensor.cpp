#include "tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/aligned.hpp"

namespace featgraph::tensor {

namespace {

std::atomic<std::int64_t> g_allocations{0};

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    FG_CHECK_MSG(d >= 0, "tensor dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::shared_ptr<float[]> allocate_aligned(std::int64_t numel) {
  if (numel == 0) numel = 1;  // keep data() non-null for empty tensors
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  support::AlignedAllocator<float> alloc;
  float* p = alloc.allocate(static_cast<std::size_t>(numel));
  return std::shared_ptr<float[]>(p, [](float* q) { std::free(q); });
}

}  // namespace

std::int64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(allocate_aligned(numel_)) {
  FG_CHECK_MSG(shape_.size() <= 3, "tensors support rank <= 3");
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  Tensor t(std::move(shape));
  t.fill(0.0f);
  return t;
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, std::uint64_t seed,
                     float stddev) {
  Tensor t(std::move(shape));
  support::Rng rng(seed);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = stddev * static_cast<float>(rng.normal());
  return t;
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, std::uint64_t seed,
                       float lo, float hi) {
  Tensor t(std::move(shape));
  support::Rng rng(seed);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = lo + (hi - lo) * static_cast<float>(rng.uniform_real());
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(shape_);
  std::memcpy(t.data(), data(), static_cast<std::size_t>(numel_) * sizeof(float));
  return t;
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  FG_CHECK_MSG(shape_numel(new_shape) == numel_,
               "reshape must preserve the number of elements");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data(), data() + numel_, value);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  FG_CHECK(a.numel() == b.numel());
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a.at(i) - b.at(i)));
  return m;
}

}  // namespace featgraph::tensor
