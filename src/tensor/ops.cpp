#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/parallel_for.hpp"

namespace featgraph::tensor {

namespace {

void check_matrix(const Tensor& t) {
  FG_CHECK_MSG(t.rank() == 2, "operation requires a rank-2 tensor");
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, int threads) {
  check_matrix(a);
  check_matrix(b);
  const std::int64_t m = a.shape(0), k = a.shape(1), n = b.shape(1);
  FG_CHECK_MSG(b.shape(0) == k, "matmul inner dimensions must agree");
  Tensor c = Tensor::zeros({m, n});

  // i-k-j loop order: the j-inner loop is a contiguous axpy that the
  // compiler vectorizes; blocking over k keeps the B panel in cache.
  constexpr std::int64_t kBlock = 64;
  auto row_block = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t kk = 0; kk < k; kk += kBlock) {
      const std::int64_t k_end = std::min(kk + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* ai = a.row(i);
        float* ci = c.row(i);
        for (std::int64_t p = kk; p < k_end; ++p) {
          const float aip = ai[p];
          const float* bp = b.row(p);
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  };
  parallel::parallel_for_ranges(0, m, threads, row_block);
  return c;
}

Tensor matmul_transposed(const Tensor& a, const Tensor& b_t, int threads) {
  check_matrix(a);
  check_matrix(b_t);
  const std::int64_t m = a.shape(0), k = a.shape(1), n = b_t.shape(0);
  FG_CHECK_MSG(b_t.shape(1) == k, "matmul_transposed inner dims must agree");
  Tensor c({m, n});
  auto row_block = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* ai = a.row(i);
      float* ci = c.row(i);
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b_t.row(j);
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
  };
  parallel::parallel_for_ranges(0, m, threads, row_block);
  return c;
}

namespace {

template <class Fn>
Tensor binary_op(const Tensor& a, const Tensor& b, Fn fn) {
  FG_CHECK_MSG(a.numel() == b.numel(), "elementwise operands must match");
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * s;
  return out;
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  check_matrix(a);
  FG_CHECK(bias.numel() == a.shape(1));
  Tensor out(a.shape());
  const std::int64_t n = a.shape(1);
  for (std::int64_t i = 0; i < a.shape(0); ++i) {
    const float* ai = a.row(i);
    float* oi = out.row(i);
    const float* bp = bias.data();
    for (std::int64_t j = 0; j < n; ++j) oi[j] = ai[j] + bp[j];
  }
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] > 0 ? pa[i] : 0;
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& x) {
  return binary_op(dy, x, [](float g, float v) { return v > 0 ? g : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i)
    po[i] = pa[i] > 0 ? pa[i] : slope * pa[i];
  return out;
}

Tensor leaky_relu_backward(const Tensor& dy, const Tensor& x, float slope) {
  return binary_op(dy, x,
                   [slope](float g, float v) { return v > 0 ? g : slope * g; });
}

Tensor log_softmax_rows(const Tensor& a) {
  check_matrix(a);
  Tensor out(a.shape());
  const std::int64_t n = a.shape(1);
  for (std::int64_t i = 0; i < a.shape(0); ++i) {
    const float* ai = a.row(i);
    float* oi = out.row(i);
    float mx = ai[0];
    for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, ai[j]);
    float denom = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) denom += std::exp(ai[j] - mx);
    const float log_denom = std::log(denom) + mx;
    for (std::int64_t j = 0; j < n; ++j) oi[j] = ai[j] - log_denom;
  }
  return out;
}

float nll_loss_masked(const Tensor& log_probs,
                      const std::vector<std::int64_t>& mask_rows,
                      const std::vector<std::int32_t>& labels,
                      Tensor* grad_out) {
  FG_CHECK(log_probs.rank() == 2);
  FG_CHECK(!mask_rows.empty());
  const std::int64_t c = log_probs.shape(1);
  if (grad_out != nullptr) {
    *grad_out = Tensor::zeros(log_probs.shape());
  }
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(mask_rows.size());
  for (std::int64_t row : mask_rows) {
    const std::int32_t y = labels[static_cast<std::size_t>(row)];
    FG_CHECK(y >= 0 && y < c);
    loss -= log_probs.at(row, y);
    if (grad_out != nullptr) {
      // d(nll)/d(logits) for log-softmax inputs: softmax(x) - onehot(y).
      const float* lp = log_probs.row(row);
      float* g = grad_out->row(row);
      for (std::int64_t j = 0; j < c; ++j) g[j] = std::exp(lp[j]) * inv_n;
      g[y] -= inv_n;
    }
  }
  return static_cast<float>(loss / static_cast<double>(mask_rows.size()));
}

Tensor transpose(const Tensor& a) {
  check_matrix(a);
  const std::int64_t m = a.shape(0), n = a.shape(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

float sum(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) s += p[i];
  return static_cast<float>(s);
}

}  // namespace featgraph::tensor
