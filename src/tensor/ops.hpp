// Dense operator library over Tensor: the "dense side" of GNN workloads
// (linear layers, activations, softmax/loss). These back both the UDF bodies
// (e.g. MLP aggregation multiplies with a weight matrix) and the minidgl
// framework's dense layers.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace featgraph::tensor {

/// C = A(m x k) * B(k x n), blocked over k for cache reuse; `threads` > 1
/// parallelizes over row blocks of A.
Tensor matmul(const Tensor& a, const Tensor& b, int threads = 1);

/// C = A(m x k) * B^T where B is (n x k).
Tensor matmul_transposed(const Tensor& a, const Tensor& b_t, int threads = 1);

/// Elementwise helpers; all allocate a fresh result.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
/// out[i, :] = a[i, :] + bias[:] (bias broadcast along rows).
Tensor add_bias(const Tensor& a, const Tensor& bias);

Tensor relu(const Tensor& a);
/// grad of relu: dx = dy * (x > 0).
Tensor relu_backward(const Tensor& dy, const Tensor& x);
Tensor leaky_relu(const Tensor& a, float slope);
Tensor leaky_relu_backward(const Tensor& dy, const Tensor& x, float slope);

/// Row-wise log-softmax for an (n x c) matrix.
Tensor log_softmax_rows(const Tensor& a);
/// Mean negative log-likelihood over the rows listed in `mask_rows`;
/// also writes d(loss)/d(logits) into `grad_out` (same shape as logits).
float nll_loss_masked(const Tensor& log_probs,
                      const std::vector<std::int64_t>& mask_rows,
                      const std::vector<std::int32_t>& labels,
                      Tensor* grad_out);

/// (m x n) -> (n x m).
Tensor transpose(const Tensor& a);

float sum(const Tensor& a);

}  // namespace featgraph::tensor
