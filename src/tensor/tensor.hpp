// Dense row-major float32 tensor: the feature containers that make GNN
// workloads "substantially different from traditional graph workloads"
// (paper Fig. 1). Deliberately minimal: shapes up to rank 3, shared
// ownership for cheap views, 64-byte aligned storage for vectorized feature
// loops.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::tensor {

/// Buffer allocations since process start. Tensor copies SHARE storage and
/// do not bump this — only fresh buffers (constructors, clone, zeros/full/
/// randn) do. Test hook: diff across a code path to pin its copy count.
std::int64_t allocation_count();

class Tensor {
 public:
  Tensor() = default;

  /// Allocates an uninitialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  /// iid N(0, stddev^2) entries from the given deterministic seed.
  static Tensor randn(std::vector<std::int64_t> shape, std::uint64_t seed,
                      float stddev = 1.0f);
  /// iid U[lo, hi) entries from the given deterministic seed.
  static Tensor uniform(std::vector<std::int64_t> shape, std::uint64_t seed,
                        float lo = 0.0f, float hi = 1.0f);

  bool defined() const { return data_ != nullptr; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const { return numel_; }
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t shape(int i) const { return shape_.at(static_cast<size_t>(i)); }

  /// Number of rows / row width when viewed as a 2-D matrix: a rank-N tensor
  /// is (shape[0]) x (product of remaining dims). Rank-1 is 1 x n.
  std::int64_t rows() const {
    return rank() <= 1 ? 1 : shape_[0];
  }
  std::int64_t row_size() const {
    return rank() <= 1 ? numel_ : numel_ / shape_[0];
  }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  float* row(std::int64_t i) {
    FG_DCHECK(i >= 0 && i < rows());
    return data_.get() + i * row_size();
  }
  const float* row(std::int64_t i) const {
    FG_DCHECK(i >= 0 && i < rows());
    return data_.get() + i * row_size();
  }

  float& at(std::int64_t i) {
    FG_DCHECK(i >= 0 && i < numel_);
    return data_.get()[i];
  }
  float at(std::int64_t i) const {
    FG_DCHECK(i >= 0 && i < numel_);
    return data_.get()[i];
  }
  float& at(std::int64_t i, std::int64_t j) { return *(row(i) + j); }
  float at(std::int64_t i, std::int64_t j) const { return *(row(i) + j); }

  /// Deep copy.
  Tensor clone() const;

  /// Shares storage; changes the logical shape. numel must match.
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

  void fill(float value);

 private:
  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<float[]> data_;
};

/// Max absolute elementwise difference; both tensors must have equal numel.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace featgraph::tensor
