// Schedule-IR tuner benchmark (ISSUE 6): flat-knob grid tuning vs
// Schedule-IR grid tuning for the CPU kernels the IR can actually help —
// register-blocked feature tiles (tile(W).unroll(U) -> simd::accum_rows /
// waxpy_rows keep the output tile pinned in vector registers across a row's
// whole in-edge group) are unreachable from the flat knobs, so the IR-tuned
// winner beats the flat-tuned winner wherever the per-edge load+store of
// the output row was the bottleneck. Runs every supported ISA and splices a
// "schedule_ir" section into BENCH_kernels.json (the trajectory file
// bench_micro_kernels seeds).
//
//   $ ./bench_schedule_ir
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/schedule_ir.hpp"
#include "featgraph.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

/// Human-readable spelling of a tuned schedule: the attached IR program, or
/// the flat knobs that won.
std::string describe(const CpuSpmmSchedule& s) {
  if (s.ir != nullptr) return s.ir->describe().empty() ? "<default>"
                                                       : s.ir->describe();
  char buf[96];
  std::snprintf(buf, sizeof buf, "flat{parts=%d, tile=%lld, lb=%s}",
                s.num_partitions, static_cast<long long>(s.feat_tile),
                s.load_balance == fg::core::LoadBalance::kNnzBalanced
                    ? "nnz"
                    : "rows");
  return buf;
}

struct RowResult {
  std::string name;
  // Parallel to the ISA list: flat-tuned best, IR-tuned best, IR winner.
  std::vector<double> flat_sec, ir_sec;
  std::vector<std::string> ir_best;
  double best_isa_speedup = 0.0;
};

}  // namespace

int main() {
  fg::bench::print_banner("schedule_ir",
                          "flat-knob grid tuner vs Schedule-IR grid tuner");
  const double scale = fg::bench::dataset_scale();
  const std::int64_t d = 64;
  const auto coo = fg::graph::gen_rmat(
      static_cast<fg::graph::vid_t>(32768 * scale * 10), 16.0, 42);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  // gen_rmat rounds the vertex count up to a power of two — size the
  // feature matrix from the generated graph, not the request.
  const fg::graph::vid_t n = coo.num_src;
  const Tensor x = Tensor::randn({n, d}, 5);
  std::printf("graph: rmat n=%d nnz=%lld, feat %lld\n", n,
              static_cast<long long>(csr.nnz()), static_cast<long long>(d));

  const auto isas = fg::simd::supported_isas();
  const int reps = std::max(2, fg::support::bench_reps() - 1);

  // One kernel row: tune the flat grid and the IR grid under each ISA pin
  // with the same measurement protocol (tune_* already does best-of-reps
  // per candidate), then compare the winners.
  const auto run_row = [&](const char* name,
                           const std::function<fg::core::SpmmTuneResult(
                               std::vector<CpuSpmmSchedule>)>& tune) {
    RowResult row;
    row.name = name;
    for (const Isa isa : isas) {
      fg::simd::ScopedIsa pin(isa);
      const auto flat =
          tune(fg::core::default_spmm_candidates(d, /*num_threads=*/1));
      const auto ir = tune(fg::core::default_spmm_ir_candidates(
          d, csr.num_rows, /*num_threads=*/1));
      row.flat_sec.push_back(flat.best_seconds);
      row.ir_sec.push_back(ir.best_seconds);
      row.ir_best.push_back(describe(ir.best));
      const double sp = flat.best_seconds / ir.best_seconds;
      row.best_isa_speedup = std::max(row.best_isa_speedup, sp);
      std::printf("%-24s %-7s flat %.6f s (%s)\n", name,
                  fg::simd::isa_name(isa), flat.best_seconds,
                  describe(flat.best).c_str());
      std::printf("%-24s %-7s ir   %.6f s (%s)  -> %.2fx\n", name,
                  fg::simd::isa_name(isa), ir.best_seconds,
                  describe(ir.best).c_str(), sp);
    }
    return row;
  };

  std::vector<RowResult> rows;
  const fg::core::SpmmOperands xops{&x, nullptr, nullptr};
  rows.push_back(run_row("spmm_copy_u_sum_d64", [&](auto cands) {
    return fg::core::tune_spmm(csr, "copy_u", "sum", xops, std::move(cands),
                               reps);
  }));
  rows.push_back(run_row("spmm_copy_u_max_d64", [&](auto cands) {
    return fg::core::tune_spmm(csr, "copy_u", "max", xops, std::move(cands),
                               reps);
  }));
  fg::core::AttentionOperands aops;
  aops.src_feat = &x;
  rows.push_back(run_row("attention_copy_u_d64", [&](auto cands) {
    return fg::core::tune_attention(csr, "copy_u", aops, std::move(cands),
                                    reps);
  }));

  // --- splice the "schedule_ir" section --------------------------------
  std::string body = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    \"graph\": {\"generator\": \"rmat\", \"n\": %d, "
                "\"avg_degree\": 16, \"nnz\": %lld, \"feature_dim\": %lld},\n"
                "    \"tuner\": \"grid\",\n    \"threads\": 1,\n",
                n, static_cast<long long>(csr.nnz()),
                static_cast<long long>(d));
  body += buf;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RowResult& row = rows[r];
    body += "    \"" + row.name + "\": {\n";
    for (std::size_t i = 0; i < isas.size(); ++i) {
      std::snprintf(buf, sizeof buf,
                    "      \"%s\": {\"flat_tuned_sec\": %.6f, "
                    "\"ir_tuned_sec\": %.6f, \"speedup\": %.2f, "
                    "\"ir_best\": \"%s\"},\n",
                    fg::simd::isa_name(isas[i]), row.flat_sec[i],
                    row.ir_sec[i], row.flat_sec[i] / row.ir_sec[i],
                    row.ir_best[i].c_str());
      body += buf;
    }
    std::snprintf(buf, sizeof buf, "      \"best_isa_speedup\": %.2f\n    }%s\n",
                  row.best_isa_speedup, r + 1 < rows.size() ? "," : "");
    body += buf;
  }
  body += "  }";
  fg::bench::splice_json_section("BENCH_kernels.json", "schedule_ir", body);
  std::printf("BENCH_kernels.json: schedule_ir section updated\n");
  return 0;
}
