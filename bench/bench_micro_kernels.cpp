// Google-benchmark micro suite over kernel variants: SpMM and SDDMM under
// different schedules (unpartitioned / partitioned / tiled / Hilbert).
// Complements the paper-table binaries with statistically robust
// per-kernel timings.
#include <benchmark/benchmark.h>

#include "featgraph.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::tensor::Tensor;

namespace {

struct MicroFixture {
  fg::graph::Coo coo;
  fg::graph::Csr in_csr;
  Tensor x;

  MicroFixture()
      : coo(fg::graph::gen_community(20000, 32.0, 20, 0.7, 7)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({20000, 128}, 8)) {}

  static MicroFixture& get() {
    static MicroFixture f;
    return f;
  }
};

void BM_SpmmCopyUSum(benchmark::State& state) {
  auto& f = MicroFixture::get();
  CpuSpmmSchedule sched;
  sched.num_partitions = static_cast<int>(state.range(0));
  sched.feat_tile = state.range(1);
  for (auto _ : state) {
    auto out = fg::core::spmm(f.in_csr, "copy_u", "sum", sched,
                              {&f.x, nullptr, nullptr});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

void BM_SpmmMlpMax(benchmark::State& state) {
  auto& f = MicroFixture::get();
  static Tensor x8 = Tensor::randn({20000, 8}, 9);
  static Tensor w = Tensor::randn({8, 64}, 10);
  CpuSpmmSchedule sched;
  sched.num_partitions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto out = fg::core::spmm(f.in_csr, "mlp", "max", sched, {&x8, nullptr, &w});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

void BM_SddmmDot(benchmark::State& state) {
  auto& f = MicroFixture::get();
  fg::core::CpuSddmmSchedule sched;
  sched.hilbert_order = state.range(0) != 0;
  sched.reduce_tile = state.range(1);
  for (auto _ : state) {
    auto out = fg::core::sddmm(f.coo, "dot", sched, {&f.x, nullptr});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.coo.num_edges());
}

void BM_GenericUdfOverhead(benchmark::State& state) {
  // Blackbox std::function UDF vs the fused builtin: quantifies what the
  // paper gains by opening the UDF to the scheduler.
  auto& f = MicroFixture::get();
  fg::core::GenericMsgFn msg = [&](auto u, auto, auto, float* out) {
    const float* xu = f.x.row(u);
    for (std::int64_t j = 0; j < 128; ++j) out[j] = xu[j];
  };
  for (auto _ : state) {
    auto out = fg::core::spmm_generic(f.in_csr, msg, "sum", 128, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

}  // namespace

BENCHMARK(BM_SpmmCopyUSum)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({1, 32})
    ->Args({8, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpmmMlpMax)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SddmmDot)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 32})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenericUdfOverhead)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
