// Google-benchmark micro suite over kernel variants: SpMM and SDDMM under
// different schedules (unpartitioned / partitioned / tiled / Hilbert), SIMD
// backends (scalar / AVX2 / AVX-512) and row-split policies (static /
// nnz-balanced). Complements the paper-table binaries with statistically
// robust per-kernel timings.
//
// After the registered benchmarks run, main() records the canonical
// micro-kernel baseline — copy_u/sum SpMM on an R-MAT graph at d=64 and at
// d=100 (not a multiple of the vector width: the masked-tail workload),
// scalar vs avx2 vs avx512 and static vs nnz-balanced — to
// BENCH_kernels.json in the working directory, so successive PRs accumulate
// a perf trajectory. Pass --benchmark_filter='^$' to skip the
// google-benchmark suite and only refresh the baseline file.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <thread>

#include "featgraph.hpp"
#include "common.hpp"
#include "gpusim/attention_gpu.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::core::LoadBalance;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

struct MicroFixture {
  fg::graph::Coo coo;
  fg::graph::Csr in_csr;
  Tensor x;

  MicroFixture()
      : coo(fg::graph::gen_community(20000, 32.0, 20, 0.7, 7)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({20000, 128}, 8)) {}

  static MicroFixture& get() {
    static MicroFixture f;
    return f;
  }
};

Isa isa_arg(std::int64_t v) {
  return v == 0 ? Isa::kScalar : v == 1 ? Isa::kAvx2 : Isa::kAvx512;
}
LoadBalance lb_arg(std::int64_t v) {
  return v == 0 ? LoadBalance::kStaticRows : LoadBalance::kNnzBalanced;
}

void BM_SpmmCopyUSum(benchmark::State& state) {
  auto& f = MicroFixture::get();
  CpuSpmmSchedule sched;
  sched.num_partitions = static_cast<int>(state.range(0));
  sched.feat_tile = state.range(1);
  sched.load_balance = lb_arg(state.range(3));
  sched.num_threads = static_cast<int>(state.range(4));
  fg::simd::ScopedIsa pin(isa_arg(state.range(2)));
  for (auto _ : state) {
    auto out = fg::core::spmm(f.in_csr, "copy_u", "sum", sched,
                              {&f.x, nullptr, nullptr});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

void BM_SpmmMlpMax(benchmark::State& state) {
  auto& f = MicroFixture::get();
  static Tensor x8 = Tensor::randn({20000, 8}, 9);
  static Tensor w = Tensor::randn({8, 64}, 10);
  CpuSpmmSchedule sched;
  sched.num_partitions = static_cast<int>(state.range(0));
  fg::simd::ScopedIsa pin(isa_arg(state.range(1)));
  for (auto _ : state) {
    auto out = fg::core::spmm(f.in_csr, "mlp", "max", sched, {&x8, nullptr, &w});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

void BM_SddmmDot(benchmark::State& state) {
  auto& f = MicroFixture::get();
  fg::core::CpuSddmmSchedule sched;
  sched.hilbert_order = state.range(0) != 0;
  sched.reduce_tile = state.range(1);
  fg::simd::ScopedIsa pin(isa_arg(state.range(2)));
  for (auto _ : state) {
    auto out = fg::core::sddmm(f.coo, "dot", sched, {&f.x, nullptr});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.coo.num_edges());
}

void BM_FusedAttention(benchmark::State& state) {
  // The fused SDDMM -> edge-softmax -> SpMM pipeline vs its composed form
  // (arg 0: 0 = composed chain, 1 = fused kernel), per ISA (arg 1).
  auto& f = MicroFixture::get();
  fg::simd::ScopedIsa pin(isa_arg(state.range(1)));
  const bool fused = state.range(0) != 0;
  for (auto _ : state) {
    if (fused) {
      fg::core::AttentionOperands ops;
      ops.src_feat = &f.x;
      auto r = fg::core::attention(f.in_csr, "copy_u", {}, ops);
      benchmark::DoNotOptimize(r.out.data());
    } else {
      auto logits = fg::core::sddmm(f.coo, "dot", {}, {&f.x, nullptr});
      auto alpha = fg::core::edge_softmax(f.in_csr, logits, 1);
      auto out = fg::core::spmm(f.in_csr, "u_mul_e", "sum", {},
                                {&f.x, &alpha, nullptr});
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

void BM_GenericUdfOverhead(benchmark::State& state) {
  // Blackbox std::function UDF vs the fused builtin: quantifies what the
  // paper gains by opening the UDF to the scheduler.
  auto& f = MicroFixture::get();
  fg::core::GenericMsgFn msg = [&](auto u, auto, auto, float* out) {
    const float* xu = f.x.row(u);
    for (std::int64_t j = 0; j < 128; ++j) out[j] = xu[j];
  };
  for (auto _ : state) {
    auto out = fg::core::spmm_generic(f.in_csr, msg, "sum", 128, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.in_csr.nnz());
}

// ---------------------------------------------------------------------------
// Recorded baseline (BENCH_kernels.json)
// ---------------------------------------------------------------------------

void record_baseline() {
  // The acceptance workloads: copy_u/sum SpMM on R-MAT skew at d=64 (the
  // historical trajectory row) and at d=100 (not a multiple of 16 — the
  // masked-tail row where AVX-512 removes the scalar tail loop outright).
  const auto coo = fg::graph::gen_rmat(32768, 16.0, 42);
  const auto in_csr = fg::graph::coo_to_in_csr(coo);
  const Tensor x64 = Tensor::randn({in_csr.num_cols, 64}, 43);
  const Tensor x100 = Tensor::randn({in_csr.num_cols, 100}, 44);

  const auto time_spmm = [&](const Tensor& x, Isa isa, LoadBalance lb,
                             int threads) {
    fg::simd::ScopedIsa pin(isa);
    CpuSpmmSchedule sched;
    sched.num_threads = threads;
    sched.load_balance = lb;
    const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
    return fg::bench::measure_seconds(
        [&] { (void)fg::core::spmm(in_csr, "copy_u", "sum", sched, ops); });
  };

  const double scalar_static_1t =
      time_spmm(x64, Isa::kScalar, LoadBalance::kStaticRows, 1);
  const double scalar_nnz_1t =
      time_spmm(x64, Isa::kScalar, LoadBalance::kNnzBalanced, 1);
  const double simd_static_1t =
      time_spmm(x64, Isa::kAvx2, LoadBalance::kStaticRows, 1);
  const double simd_nnz_1t =
      time_spmm(x64, Isa::kAvx2, LoadBalance::kNnzBalanced, 1);
  const bool has512 = fg::simd::cpu_supports_avx512();
  const double avx512_static_1t =
      has512 ? time_spmm(x64, Isa::kAvx512, LoadBalance::kStaticRows, 1) : 0.0;
  const double avx512_nnz_1t =
      has512 ? time_spmm(x64, Isa::kAvx512, LoadBalance::kNnzBalanced, 1) : 0.0;

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const double scalar_static_mt =
      time_spmm(x64, Isa::kScalar, LoadBalance::kStaticRows, hw);
  const double simd_static_mt =
      time_spmm(x64, Isa::kAvx2, LoadBalance::kStaticRows, hw);
  const double simd_nnz_mt =
      time_spmm(x64, Isa::kAvx2, LoadBalance::kNnzBalanced, hw);
  const double avx512_nnz_mt =
      has512 ? time_spmm(x64, Isa::kAvx512, LoadBalance::kNnzBalanced, hw)
             : 0.0;

  // Masked-tail row (d=100): 6 full 16-lane vectors + a 4-lane tail that
  // AVX2 runs as a scalar peel and AVX-512 as one masked op.
  const double d100_avx2 =
      time_spmm(x100, Isa::kAvx2, LoadBalance::kStaticRows, 1);
  const double d100_avx512 =
      has512 ? time_spmm(x100, Isa::kAvx512, LoadBalance::kStaticRows, 1) : 0.0;

  const auto time_mlp = [&](Isa isa) {
    fg::simd::ScopedIsa pin(isa);
    static const Tensor x8 = Tensor::randn({in_csr.num_cols, 8}, 45);
    static const Tensor w = Tensor::randn({8, 64}, 46);
    return fg::bench::measure_seconds([&] {
      (void)fg::core::spmm(in_csr, "mlp", "max", {}, {&x8, nullptr, &w});
    });
  };
  const double mlp_avx2 = time_mlp(Isa::kAvx2);
  const double mlp_avx512 = has512 ? time_mlp(Isa::kAvx512) : 0.0;

  const auto time_sddmm = [&](Isa isa) {
    fg::simd::ScopedIsa pin(isa);
    fg::core::CpuSddmmSchedule sched;
    return fg::bench::measure_seconds(
        [&] { (void)fg::core::sddmm(coo, "dot", sched, {&x64, nullptr}); });
  };
  const double sddmm_scalar = time_sddmm(Isa::kScalar);
  const double sddmm_simd = time_sddmm(Isa::kAvx2);
  const double sddmm_avx512 = has512 ? time_sddmm(Isa::kAvx512) : 0.0;

  // Fused GAT attention (one per-row SDDMM -> softmax -> SpMM pass) vs the
  // composed three-launch chain, both at d=64 on the R-MAT graph — the
  // acceptance row for the fused attention engine.
  const auto time_fused_attn = [&](Isa isa) {
    fg::simd::ScopedIsa pin(isa);
    fg::core::AttentionOperands ops;
    ops.src_feat = &x64;
    return fg::bench::measure_seconds([&] {
      (void)fg::core::attention(in_csr, "copy_u", {}, ops);
    });
  };
  const auto time_composed_attn = [&](Isa isa) {
    fg::simd::ScopedIsa pin(isa);
    return fg::bench::measure_seconds([&] {
      auto logits = fg::core::sddmm(coo, "dot", {}, {&x64, nullptr});
      auto alpha = fg::core::edge_softmax(in_csr, logits, 1);
      (void)fg::core::spmm(in_csr, "u_mul_e", "sum", {},
                           {&x64, &alpha, nullptr});
    });
  };
  const double attn_fused_scalar = time_fused_attn(Isa::kScalar);
  const double attn_composed_scalar = time_composed_attn(Isa::kScalar);
  const double attn_fused_avx2 = time_fused_attn(Isa::kAvx2);
  const double attn_composed_avx2 = time_composed_attn(Isa::kAvx2);
  const double attn_fused_avx512 =
      has512 ? time_fused_attn(Isa::kAvx512) : 0.0;
  const double attn_composed_avx512 =
      has512 ? time_composed_attn(Isa::kAvx512) : 0.0;

  // Fused gpusim attention vs the composed sddmm_gpu -> softmax -> spmm_gpu
  // chain — SIMULATED V100 seconds (deterministic, one evaluation) on the
  // same R-MAT graph at d=64 (the trajectory row) and d=8 (narrow features,
  // where the three launch overheads weigh relatively more).
  const auto gpu_attn = [&](const Tensor& x, bool fused) {
    fg::core::AttentionOperands aops;
    aops.src_feat = &x;
    fg::core::GpuSpmmSchedule sched;
    return fused
               ? fg::gpusim::attention_gpu(in_csr, "copy_u", sched, aops)
               : fg::gpusim::attention_gpu_composed(in_csr, "copy_u", sched,
                                                    aops);
  };
  const Tensor x8g = Tensor::randn({in_csr.num_cols, 8}, 48);
  const auto gpu_fused_d64 = gpu_attn(x64, true);
  const auto gpu_composed_d64 = gpu_attn(x64, false);
  const auto gpu_fused_d8 = gpu_attn(x8g, true);
  const auto gpu_composed_d8 = gpu_attn(x8g, false);

  // Narrow-feature row (d=8 < one 512-bit vector): the AVX-512 table routes
  // these spans to the AVX2 backend (the recorded 0.41x regression's fix),
  // so the row now pins avx512 >= avx2.
  const Tensor x8n = Tensor::randn({in_csr.num_cols, 8}, 47);
  const double d8_scalar =
      time_spmm(x8n, Isa::kScalar, LoadBalance::kStaticRows, 1);
  const double d8_avx2 = time_spmm(x8n, Isa::kAvx2, LoadBalance::kStaticRows, 1);
  const double d8_avx512 =
      has512 ? time_spmm(x8n, Isa::kAvx512, LoadBalance::kStaticRows, 1) : 0.0;

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_kernels_baseline\",\n");
  std::fprintf(f,
               "  \"machine\": {\"hardware_concurrency\": %d, "
               "\"avx2\": %s, \"avx512\": %s, \"active_isa\": \"%s\"},\n",
               hw, fg::simd::cpu_supports_avx2() ? "true" : "false",
               has512 ? "true" : "false",
               fg::simd::isa_name(fg::simd::active_isa()));
  std::fprintf(f,
               "  \"graph\": {\"generator\": \"rmat\", \"n\": %d, "
               "\"avg_degree\": 16, \"nnz\": %lld, \"feature_dim\": 64},\n",
               static_cast<int>(in_csr.num_rows),
               static_cast<long long>(in_csr.nnz()));
  std::fprintf(f, "  \"reps\": %d,\n", fg::support::bench_reps());
  std::fprintf(f, "  \"mt_threads\": %d,\n", hw);
  std::fprintf(f, "  \"spmm_copy_u_sum\": {\n");
  std::fprintf(f, "    \"scalar_static_1t_sec\": %.6f,\n", scalar_static_1t);
  std::fprintf(f, "    \"scalar_nnz_1t_sec\": %.6f,\n", scalar_nnz_1t);
  std::fprintf(f, "    \"simd_static_1t_sec\": %.6f,\n", simd_static_1t);
  std::fprintf(f, "    \"simd_nnz_1t_sec\": %.6f,\n", simd_nnz_1t);
  std::fprintf(f, "    \"avx512_static_1t_sec\": %.6f,\n", avx512_static_1t);
  std::fprintf(f, "    \"avx512_nnz_1t_sec\": %.6f,\n", avx512_nnz_1t);
  std::fprintf(f, "    \"simd_speedup_1t\": %.2f,\n",
               scalar_static_1t / simd_static_1t);
  std::fprintf(f, "    \"avx512_vs_avx2_1t\": %.2f,\n",
               has512 ? simd_static_1t / avx512_static_1t : 0.0);
  std::fprintf(f, "    \"scalar_static_mt_sec\": %.6f,\n", scalar_static_mt);
  std::fprintf(f, "    \"simd_static_mt_sec\": %.6f,\n", simd_static_mt);
  std::fprintf(f, "    \"simd_nnz_mt_sec\": %.6f,\n", simd_nnz_mt);
  std::fprintf(f, "    \"avx512_nnz_mt_sec\": %.6f,\n", avx512_nnz_mt);
  std::fprintf(f, "    \"nnz_vs_static_speedup_mt\": %.2f\n",
               simd_static_mt / simd_nnz_mt);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"spmm_copy_u_sum_d100_masked_tail\": {\n");
  std::fprintf(f, "    \"avx2_1t_sec\": %.6f,\n", d100_avx2);
  std::fprintf(f, "    \"avx512_1t_sec\": %.6f,\n", d100_avx512);
  std::fprintf(f, "    \"avx512_vs_avx2\": %.2f\n",
               has512 ? d100_avx2 / d100_avx512 : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"spmm_mlp_max\": {\n");
  std::fprintf(f, "    \"avx2_sec\": %.6f,\n", mlp_avx2);
  std::fprintf(f, "    \"avx512_sec\": %.6f,\n", mlp_avx512);
  std::fprintf(f, "    \"avx512_vs_avx2\": %.2f\n",
               has512 ? mlp_avx2 / mlp_avx512 : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sddmm_dot\": {\n");
  std::fprintf(f, "    \"scalar_sec\": %.6f,\n", sddmm_scalar);
  std::fprintf(f, "    \"simd_sec\": %.6f,\n", sddmm_simd);
  std::fprintf(f, "    \"avx512_sec\": %.6f,\n", sddmm_avx512);
  std::fprintf(f, "    \"simd_speedup\": %.2f,\n", sddmm_scalar / sddmm_simd);
  std::fprintf(f, "    \"avx512_vs_avx2\": %.2f\n",
               has512 ? sddmm_simd / sddmm_avx512 : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"attention_fused_gat_d64\": {\n");
  std::fprintf(f, "    \"composed_scalar_sec\": %.6f,\n", attn_composed_scalar);
  std::fprintf(f, "    \"fused_scalar_sec\": %.6f,\n", attn_fused_scalar);
  std::fprintf(f, "    \"composed_avx2_sec\": %.6f,\n", attn_composed_avx2);
  std::fprintf(f, "    \"fused_avx2_sec\": %.6f,\n", attn_fused_avx2);
  std::fprintf(f, "    \"composed_avx512_sec\": %.6f,\n", attn_composed_avx512);
  std::fprintf(f, "    \"fused_avx512_sec\": %.6f,\n", attn_fused_avx512);
  std::fprintf(f, "    \"fused_speedup_scalar\": %.2f,\n",
               attn_composed_scalar / attn_fused_scalar);
  std::fprintf(f, "    \"fused_speedup_avx2\": %.2f,\n",
               attn_composed_avx2 / attn_fused_avx2);
  std::fprintf(f, "    \"fused_speedup_avx512\": %.2f\n",
               has512 ? attn_composed_avx512 / attn_fused_avx512 : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"spmm_copy_u_sum_d8_narrow\": {\n");
  std::fprintf(f, "    \"scalar_1t_sec\": %.6f,\n", d8_scalar);
  std::fprintf(f, "    \"avx2_1t_sec\": %.6f,\n", d8_avx2);
  std::fprintf(f, "    \"avx512_1t_sec\": %.6f,\n", d8_avx512);
  std::fprintf(f, "    \"avx512_vs_avx2\": %.2f\n",
               has512 ? d8_avx2 / d8_avx512 : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"attention_gpusim_fused\": {\n");
  std::fprintf(f, "    \"composed_d64_sim_sec\": %.6e,\n",
               gpu_composed_d64.cost.total_s);
  std::fprintf(f, "    \"fused_d64_sim_sec\": %.6e,\n",
               gpu_fused_d64.cost.total_s);
  std::fprintf(f, "    \"fused_speedup_d64\": %.2f,\n",
               gpu_composed_d64.cost.total_s / gpu_fused_d64.cost.total_s);
  std::fprintf(f, "    \"composed_d8_sim_sec\": %.6e,\n",
               gpu_composed_d8.cost.total_s);
  std::fprintf(f, "    \"fused_d8_sim_sec\": %.6e,\n",
               gpu_fused_d8.cost.total_s);
  std::fprintf(f, "    \"fused_speedup_d8\": %.2f,\n",
               gpu_composed_d8.cost.total_s / gpu_fused_d8.cost.total_s);
  std::fprintf(f, "    \"fused_load_transactions_d64\": %.0f,\n",
               gpu_fused_d64.stats.global_load_transactions);
  std::fprintf(f, "    \"composed_load_transactions_d64\": %.0f,\n",
               gpu_composed_d64.stats.global_load_transactions);
  std::fprintf(f, "    \"fused_launches\": 1,\n");
  std::fprintf(f, "    \"composed_launches\": 3\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "\nBENCH_kernels.json: copy_u/sum d=64 rmat — scalar %.4fs, "
      "avx2 %.4fs (%.2fx), avx512 %.4fs; d=100 tail avx512/avx2 %.2fx; "
      "sddmm dot %.2fx; fused GAT attention vs composed %.2fx (avx512 "
      "%.2fx); d=8 narrow avx512/avx2 %.2fx; gpusim fused attention "
      "%.2fx (d=64) / %.2fx (d=8) over the composed chain\n",
      scalar_static_1t, simd_static_1t, scalar_static_1t / simd_static_1t,
      avx512_static_1t, has512 ? d100_avx2 / d100_avx512 : 0.0,
      sddmm_scalar / sddmm_simd, attn_composed_avx2 / attn_fused_avx2,
      has512 ? attn_composed_avx512 / attn_fused_avx512 : 0.0,
      has512 ? d8_avx2 / d8_avx512 : 0.0,
      gpu_composed_d64.cost.total_s / gpu_fused_d64.cost.total_s,
      gpu_composed_d8.cost.total_s / gpu_fused_d8.cost.total_s);
}

}  // namespace

// (parts, tile, isa[0=scalar,1=avx2,2=avx512], load_balance[0=static,1=nnz],
//  threads). The static-vs-nnz pair runs at 4 threads — at 1 thread both
// policies execute the identical sweep and the comparison is vacuous.
// avx512 rows degrade to avx2 (one step) on hardware without it.
BENCHMARK(BM_SpmmCopyUSum)
    ->Args({1, 0, 0, 0, 1})
    ->Args({1, 0, 1, 0, 1})
    ->Args({1, 0, 2, 0, 1})
    ->Args({1, 0, 1, 0, 4})
    ->Args({1, 0, 1, 1, 4})
    ->Args({1, 0, 2, 1, 4})
    ->Args({8, 0, 1, 0, 1})
    ->Args({1, 32, 1, 0, 1})
    ->Args({1, 32, 2, 0, 1})
    ->Args({8, 32, 1, 1, 4})
    ->Unit(benchmark::kMillisecond);
// (parts, isa)
BENCHMARK(BM_SpmmMlpMax)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);
// (hilbert, reduce_tile, isa)
BENCHMARK(BM_SddmmDot)
    ->Args({0, 0, 0})
    ->Args({0, 0, 1})
    ->Args({0, 0, 2})
    ->Args({1, 0, 1})
    ->Args({0, 32, 1})
    ->Unit(benchmark::kMillisecond);
// (fused[0=composed,1=fused], isa)
BENCHMARK(BM_FusedAttention)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenericUdfOverhead)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Query-only invocations must not spend seconds re-measuring (and silently
  // overwriting) the recorded baseline; FEATGRAPH_SKIP_BASELINE=1 skips it
  // for any run.
  bool skip_baseline =
      fg::support::env_long("FEATGRAPH_SKIP_BASELINE", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    // Exact spellings only: --benchmark_list_tests=false is a normal run.
    if (arg == "--benchmark_list_tests" ||
        arg == "--benchmark_list_tests=true")
      skip_baseline = true;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!skip_baseline) record_baseline();
  return 0;
}
