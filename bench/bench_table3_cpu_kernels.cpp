// Table III: single-threaded CPU kernel performance (seconds) for
//   (a) GCN aggregation      — Ligra vs MKL-like vs FeatGraph
//   (b) MLP aggregation      — Ligra vs FeatGraph (MKL unsupported)
//   (c) dot-product attention — Ligra vs FeatGraph (MKL unsupported)
// across ogbn-proteins / reddit / rand-100K and feature lengths 32..512.
//
// Paper headline: FeatGraph 1.4-4.0x over Ligra on GCN aggregation,
// 4.4-5.5x on MLP aggregation, 4.3-6.0x on dot-product attention; vs MKL,
// faster in 14/15 GCN cells with the gap growing with feature length.
#include <cstdio>

#include "baselines/ligra.hpp"
#include "baselines/vendor_spmm.hpp"
#include "common.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

namespace {

fg::core::CpuSpmmSchedule tuned_schedule(const fg::graph::Csr& adj,
                                         const char* msg_op, const char* red,
                                         const fg::core::SpmmOperands& ops) {
  // A small grid (the full tuner would re-measure every candidate; the
  // interesting axes at one thread are partitions x tiles).
  std::vector<fg::core::CpuSpmmSchedule> grid;
  for (int parts : {1, 4, 16}) {
    for (std::int64_t tile : {std::int64_t{0}, std::int64_t{64}}) {
      fg::core::CpuSpmmSchedule s;
      s.num_partitions = parts;
      s.feat_tile = tile;
      grid.push_back(s);
    }
  }
  return fg::core::tune_spmm(adj, msg_op, red, ops, grid).best;
}

void gcn_aggregation(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("--- (a) GCN aggregation, single thread (unit: sec) ---\n");
  Table t({"dataset", "feat len", "Ligra", "MKL-like", "FeatGraph",
           "FG vs Ligra", "FG vs MKL"});
  for (const auto& d : datasets) {
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
      const double ligra = fb::measure_seconds(
          [&] { (void)fg::baselines::ligra::gcn_aggregate(d.graph, x, 1); });
      const double mkl = fb::measure_seconds([&] {
        (void)fg::baselines::vendor::csr_spmm(d.graph.in_csr(), x, 1);
      });
      const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
      const auto sched = tuned_schedule(d.graph.in_csr(), "copy_u", "sum", ops);
      const double featgraph = fb::measure_seconds([&] {
        (void)fg::core::spmm(d.graph.in_csr(), "copy_u", "sum", sched, ops);
      });
      t.add_row({d.name, std::to_string(len), Table::num(ligra, 4),
                 Table::num(mkl, 4), Table::num(featgraph, 4),
                 fb::speedup_str(ligra, featgraph),
                 fb::speedup_str(mkl, featgraph)});
    }
  }
  t.print();
}

void mlp_aggregation(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("\n--- (b) MLP aggregation (d1=8), single thread (unit: sec); "
              "MKL: unsupported ---\n");
  Table t({"dataset", "feat len", "Ligra", "FeatGraph", "FG vs Ligra"});
  for (const auto& d : datasets) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), 8}, 2);
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor w = Tensor::randn({8, len}, 3);
      const double ligra = fb::measure_seconds(
          [&] { (void)fg::baselines::ligra::mlp_aggregate(d.graph, x, w, 1); });
      const fg::core::SpmmOperands ops{&x, nullptr, &w};
      const auto sched = tuned_schedule(d.graph.in_csr(), "mlp", "max", ops);
      const double featgraph = fb::measure_seconds([&] {
        (void)fg::core::spmm(d.graph.in_csr(), "mlp", "max", sched, ops);
      });
      t.add_row({d.name, std::to_string(len), Table::num(ligra, 4),
                 Table::num(featgraph, 4), fb::speedup_str(ligra, featgraph)});
    }
  }
  t.print();
}

void dot_attention(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("\n--- (c) dot-product attention, single thread (unit: sec); "
              "MKL: unsupported ---\n");
  Table t({"dataset", "feat len", "Ligra", "FeatGraph", "FG vs Ligra"});
  for (const auto& d : datasets) {
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 4);
      const double ligra = fb::measure_seconds(
          [&] { (void)fg::baselines::ligra::dot_attention(d.graph, x, 1); });
      fg::core::CpuSddmmSchedule sched;
      sched.hilbert_order = true;
      sched.reduce_tile = len > 128 ? 128 : 0;
      const double featgraph = fb::measure_seconds([&] {
        (void)fg::core::sddmm(d.graph.coo(), "dot", sched, {&x, nullptr});
      });
      t.add_row({d.name, std::to_string(len), Table::num(ligra, 4),
                 Table::num(featgraph, 4), fb::speedup_str(ligra, featgraph)});
    }
  }
  t.print();
}

}  // namespace

int main() {
  fb::print_banner("Table III", "single-threaded CPU kernel performance");
  const auto datasets_a = fg::graph::standard_datasets(fb::dataset_scale());
  gcn_aggregation(datasets_a);
  // MLP aggregation does d1 x d2 work per edge; shrink so the sweep stays
  // laptop-friendly (documented in the banner/EXPERIMENTS.md).
  const auto datasets_b = fg::graph::standard_datasets(fb::dataset_scale(0.25));
  mlp_aggregation(datasets_b);
  const auto datasets_c = fg::graph::standard_datasets(fb::dataset_scale(0.5));
  dot_attention(datasets_c);
  return 0;
}
