// Minibatch serving-loop benchmark (ISSUE 5): pipelined vs serial epoch
// time for GraphSage block inference over an R-MAT graph, plus the
// shape-class schedule cache's hit rate after warmup. Appends/refreshes the
// "minibatch_pipeline" section of BENCH_kernels.json (the file
// bench_micro_kernels seeds), so successive PRs keep one trajectory file.
//
//   $ ./bench_minibatch
#include <cstdio>
#include <string>

#include "common.hpp"
#include "minidgl/train.hpp"

namespace fg = featgraph;
using fg::minidgl::ExecContext;
using fg::minidgl::MinibatchInferOptions;
using fg::minidgl::Model;
using fg::minidgl::Trainer;


int main() {
  fg::bench::print_banner("minibatch_pipeline",
                          "pipelined vs serial minibatch block inference");
  const double scale = fg::bench::dataset_scale();
  const auto n = static_cast<fg::graph::vid_t>(32768 * scale * 10);
  const auto data = fg::minidgl::make_sbm_classification(
      n, /*avg_degree=*/16.0, /*num_classes=*/8, /*p_in=*/0.85,
      /*feat_dim=*/64, /*signal=*/1.5f, /*seed=*/7);
  std::printf("graph: %d vertices, %lld edges, feat 64\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()));

  ExecContext ctx;
  ctx.num_threads = 1;
  Trainer trainer(data, Model("sage-mean", 64, 64, 8, /*seed=*/1), ctx,
                  0.05f);

  // Every vertex is a serving seed: one "epoch" = full inference pass.
  std::vector<std::int64_t> rows(
      static_cast<std::size_t>(data.graph.num_vertices()));
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<std::int64_t>(i);

  MinibatchInferOptions opts;
  opts.sampler.fanouts = {10, 10};
  opts.sampler.seed = 3;
  opts.batch_size = 512;
  opts.queue_capacity = 2;

  const int reps = fg::support::bench_reps();
  const auto run = [&](bool pipelined, bool record_cache) {
    opts.pipelined = pipelined;
    double best = 0.0;
    std::int64_t hits = 0, misses = 0, batches = 0;
    // Warmup epoch populates the schedule cache classes... except the cache
    // lives per-epoch inside infer_minibatch, so each epoch re-warms its
    // own; the recorded hit rate is a steady-state per-epoch figure.
    for (int r = 0; r < reps + 1; ++r) {
      const auto res = trainer.infer_minibatch(opts, rows);
      if (r == 0) continue;  // warm-up
      if (best == 0.0 || res.seconds < best) best = res.seconds;
      if (record_cache) {
        hits = res.schedule_cache_hits;
        misses = res.schedule_cache_misses;
        batches = res.pipeline.batches;
      }
    }
    struct R {
      double sec;
      std::int64_t hits, misses, batches;
    };
    return R{best, hits, misses, batches};
  };

  const auto serial = run(false, false);
  const auto piped = run(true, true);
  const double hit_rate =
      piped.hits + piped.misses > 0
          ? static_cast<double>(piped.hits) /
                static_cast<double>(piped.hits + piped.misses)
          : 0.0;

  std::printf(
      "serial  epoch: %.3f s\npipelined epoch: %.3f s (%.2fx)\n"
      "schedule cache after warmup: %lld hits / %lld misses (%.0f%% hit "
      "rate) over %lld batches\n",
      serial.sec, piped.sec, serial.sec / piped.sec,
      static_cast<long long>(piped.hits),
      static_cast<long long>(piped.misses), hit_rate * 100.0,
      static_cast<long long>(piped.batches));

  char body[1024];
  std::snprintf(
      body, sizeof body,
      "{\n"
      "    \"graph\": {\"generator\": \"sbm\", \"n\": %d, \"avg_degree\": 16, "
      "\"feature_dim\": 64},\n"
      "    \"model\": \"sage-mean\",\n"
      "    \"fanouts\": [10, 10],\n"
      "    \"batch_size\": 512,\n"
      "    \"batches_per_epoch\": %lld,\n"
      "    \"serial_epoch_sec\": %.6f,\n"
      "    \"pipelined_epoch_sec\": %.6f,\n"
      "    \"pipelined_speedup\": %.2f,\n"
      "    \"schedule_cache_hits\": %lld,\n"
      "    \"schedule_cache_misses\": %lld,\n"
      "    \"schedule_cache_hit_rate\": %.3f\n"
      "  }",
      data.graph.num_vertices(), static_cast<long long>(piped.batches),
      serial.sec, piped.sec, serial.sec / piped.sec,
      static_cast<long long>(piped.hits),
      static_cast<long long>(piped.misses), hit_rate);
  fg::bench::splice_json_section("BENCH_kernels.json", "minibatch_pipeline",
                                 body);
  std::printf("BENCH_kernels.json: minibatch_pipeline section updated\n");
  return 0;
}
