// Minibatch serving-loop benchmark (ISSUE 5): pipelined vs serial epoch
// time for GraphSage block inference over an R-MAT graph, plus the
// shape-class schedule cache's hit rate after warmup. Appends/refreshes the
// "minibatch_pipeline" section of BENCH_kernels.json (the file
// bench_micro_kernels seeds), so successive PRs keep one trajectory file.
//
//   $ ./bench_minibatch
#include <cstdio>
#include <string>

#include "common.hpp"
#include "minidgl/train.hpp"

namespace fg = featgraph;
using fg::minidgl::ExecContext;
using fg::minidgl::MinibatchInferOptions;
using fg::minidgl::Model;
using fg::minidgl::Trainer;

namespace {

/// Reads the whole file, or "" when absent.
std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// Splices `"key": body` in front of the file's closing brace, replacing a
/// previous copy of the same key if present. Handles a missing/empty file
/// (standalone object) and the section being the object's first entry (no
/// leading comma).
void splice_section(const char* path, const std::string& key,
                    const std::string& body) {
  std::string json = slurp(path);
  const auto key_pos = json.find("\"" + key + "\"");
  if (key_pos != std::string::npos) {
    // Our section is always spliced last: drop it and everything after
    // (back to the preceding comma, or to just after the opening brace when
    // it is the only entry), then re-close the object below.
    const auto cut = json.rfind(",\n", key_pos);
    json.erase(cut != std::string::npos ? cut : json.find('{') + 1);
  } else {
    const auto close = json.rfind('}');
    json.erase(close != std::string::npos ? close : 0);
  }
  while (!json.empty() && (json.back() == '\n' || json.back() == ' '))
    json.pop_back();
  // A fresh or single-entry file leaves "" or "{": open the object and skip
  // the separating comma; otherwise append after the surviving entries.
  const bool first_entry = json.empty() || json == "{";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "%s%s\n  \"%s\": %s\n}\n", first_entry ? "{" : json.c_str(),
               first_entry ? "" : ",", key.c_str(), body.c_str());
  std::fclose(f);
}

}  // namespace

int main() {
  fg::bench::print_banner("minibatch_pipeline",
                          "pipelined vs serial minibatch block inference");
  const double scale = fg::bench::dataset_scale();
  const auto n = static_cast<fg::graph::vid_t>(32768 * scale * 10);
  const auto data = fg::minidgl::make_sbm_classification(
      n, /*avg_degree=*/16.0, /*num_classes=*/8, /*p_in=*/0.85,
      /*feat_dim=*/64, /*signal=*/1.5f, /*seed=*/7);
  std::printf("graph: %d vertices, %lld edges, feat 64\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()));

  ExecContext ctx;
  ctx.num_threads = 1;
  Trainer trainer(data, Model("sage-mean", 64, 64, 8, /*seed=*/1), ctx,
                  0.05f);

  // Every vertex is a serving seed: one "epoch" = full inference pass.
  std::vector<std::int64_t> rows(
      static_cast<std::size_t>(data.graph.num_vertices()));
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<std::int64_t>(i);

  MinibatchInferOptions opts;
  opts.sampler.fanouts = {10, 10};
  opts.sampler.seed = 3;
  opts.batch_size = 512;
  opts.queue_capacity = 2;

  const int reps = fg::support::bench_reps();
  const auto run = [&](bool pipelined, bool record_cache) {
    opts.pipelined = pipelined;
    double best = 0.0;
    std::int64_t hits = 0, misses = 0, batches = 0;
    // Warmup epoch populates the schedule cache classes... except the cache
    // lives per-epoch inside infer_minibatch, so each epoch re-warms its
    // own; the recorded hit rate is a steady-state per-epoch figure.
    for (int r = 0; r < reps + 1; ++r) {
      const auto res = trainer.infer_minibatch(opts, rows);
      if (r == 0) continue;  // warm-up
      if (best == 0.0 || res.seconds < best) best = res.seconds;
      if (record_cache) {
        hits = res.schedule_cache_hits;
        misses = res.schedule_cache_misses;
        batches = res.pipeline.batches;
      }
    }
    struct R {
      double sec;
      std::int64_t hits, misses, batches;
    };
    return R{best, hits, misses, batches};
  };

  const auto serial = run(false, false);
  const auto piped = run(true, true);
  const double hit_rate =
      piped.hits + piped.misses > 0
          ? static_cast<double>(piped.hits) /
                static_cast<double>(piped.hits + piped.misses)
          : 0.0;

  std::printf(
      "serial  epoch: %.3f s\npipelined epoch: %.3f s (%.2fx)\n"
      "schedule cache after warmup: %lld hits / %lld misses (%.0f%% hit "
      "rate) over %lld batches\n",
      serial.sec, piped.sec, serial.sec / piped.sec,
      static_cast<long long>(piped.hits),
      static_cast<long long>(piped.misses), hit_rate * 100.0,
      static_cast<long long>(piped.batches));

  char body[1024];
  std::snprintf(
      body, sizeof body,
      "{\n"
      "    \"graph\": {\"generator\": \"sbm\", \"n\": %d, \"avg_degree\": 16, "
      "\"feature_dim\": 64},\n"
      "    \"model\": \"sage-mean\",\n"
      "    \"fanouts\": [10, 10],\n"
      "    \"batch_size\": 512,\n"
      "    \"batches_per_epoch\": %lld,\n"
      "    \"serial_epoch_sec\": %.6f,\n"
      "    \"pipelined_epoch_sec\": %.6f,\n"
      "    \"pipelined_speedup\": %.2f,\n"
      "    \"schedule_cache_hits\": %lld,\n"
      "    \"schedule_cache_misses\": %lld,\n"
      "    \"schedule_cache_hit_rate\": %.3f\n"
      "  }",
      data.graph.num_vertices(), static_cast<long long>(piped.batches),
      serial.sec, piped.sec, serial.sec / piped.sec,
      static_cast<long long>(piped.hits),
      static_cast<long long>(piped.misses), hit_rate);
  splice_section("BENCH_kernels.json", "minibatch_pipeline", body);
  std::printf("BENCH_kernels.json: minibatch_pipeline section updated\n");
  return 0;
}
