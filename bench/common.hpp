// Shared harness for the per-table / per-figure benchmark binaries.
//
// Conventions (see DESIGN.md §3): every binary prints the paper's rows in
// the paper's units, honors FEATGRAPH_SCALE (dataset scale factor, default
// 0.1) and FEATGRAPH_BENCH_REPS (timed repetitions after one warm-up,
// default 3), and runs unattended with no arguments.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "featgraph.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace featgraph::bench {

/// Feature lengths the paper sweeps in Tables III and IV.
inline const std::vector<std::int64_t>& paper_feature_lengths() {
  static const std::vector<std::int64_t> lens = {32, 64, 128, 256, 512};
  return lens;
}

/// One warm-up plus FEATGRAPH_BENCH_REPS timed runs; mean seconds.
double measure_seconds(const std::function<void()>& fn);

/// Prints the standard banner: experiment id, dataset scale, reps.
void print_banner(const std::string& experiment, const std::string& what);

/// Dataset scale for this process (FEATGRAPH_SCALE x optional extra shrink
/// for heavyweight kernels; the effective value is always printed).
double dataset_scale(double extra_shrink = 1.0);

/// Formats a ratio like "3.1x".
std::string speedup_str(double baseline_seconds, double system_seconds);

/// Reads the whole file, or "" when absent.
std::string slurp_file(const char* path);

/// JSON object describing the measuring host: hardware_concurrency, the
/// active SIMD ISA, and the pool's worker count. splice_json_section stamps
/// it as the "host" key of every BENCH section so a recorded number can
/// never be read without the machine it came from.
std::string host_info_json();

/// Splices `"key": body` in front of `path`'s closing brace, replacing a
/// previous copy of the same key if present — the idiom every bench binary
/// uses to keep one BENCH_kernels.json trajectory across PRs. Handles a
/// missing/empty file (standalone object) and the section being the
/// object's first entry (no leading comma). Assumes sections are always
/// appended last, as all writers here do.
void splice_json_section(const char* path, const std::string& key,
                         const std::string& body);

}  // namespace featgraph::bench
