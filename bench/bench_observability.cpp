// Observability overhead gate (ISSUE 10): proves the zero-overhead-when-off
// contract holds on the hottest path in the repo.
//
// Three checks, all enforced (non-zero exit on failure):
//   1. Bit-identity: SpMM output bytes are identical with tracing off and
//      with a live TraceSession — tracing must never change what a kernel
//      computes.
//   2. Overhead: the disabled instrumentation a launch pays (one
//      trace_enabled() branch + three relaxed counter bumps) is timed
//      directly in a tight loop and compared against the measured SpMM
//      launch time; the ratio must stay under 1%.
//   3. A traced run actually records spans (the gate must not pass because
//      tracing silently no-ops).
//
// Splices an "observability" section into BENCH_kernels.json.
//
//   $ ./bench_observability
#include <cstdio>
#include <cstring>
#include <string>

#include "common.hpp"
#include "featgraph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("observability",
                   "trace-off overhead gate + tracing bit-identity");
  const double scale = fb::dataset_scale();
  const std::int64_t d = 64;
  const auto coo = fg::graph::gen_rmat(
      static_cast<fg::graph::vid_t>(32768 * scale * 10), 16.0, 42);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const Tensor x = Tensor::randn({coo.num_src, d}, 5);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
  fg::core::CpuSpmmSchedule sched;

  // --- 1. bit-identity: tracing must not change a single output byte ------
  const Tensor off = fg::core::spmm(csr, "copy_u", "sum", sched, ops);
  Tensor on;
  std::int64_t traced_spans = 0;
  {
    fg::obs::TraceSession session;
    on = fg::core::spmm(csr, "copy_u", "sum", sched, ops);
    traced_spans = static_cast<std::int64_t>(fg::obs::collect_spans().size());
  }
  const bool identical =
      off.numel() == on.numel() &&
      std::memcmp(off.data(), on.data(),
                  static_cast<std::size_t>(off.numel()) * sizeof(float)) == 0;

  // --- 2. the overhead gate ------------------------------------------------
  // Per-launch cost of the disabled instrumentation, measured directly: the
  // exact operations generalized_spmm added (one disabled TraceScope's
  // trace_enabled() branch, three relaxed counter adds).
  fg::obs::Counter& c1 = fg::obs::Registry::global().counter("bench.obs.c1");
  fg::obs::Counter& c2 = fg::obs::Registry::global().counter("bench.obs.c2");
  fg::obs::Counter& c3 = fg::obs::Registry::global().counter("bench.obs.c3");
  const int kIters = 1000000;
  const double instr_total = fb::measure_seconds([&] {
    for (int i = 0; i < kIters; ++i) {
      FG_TRACE_SCOPE("bench.obs.disabled");
      c1.add(1);
      c2.add(1);
      c3.add(1);
    }
  });
  const double instr_per_launch = instr_total / kIters;

  const double spmm_sec = fb::measure_seconds(
      [&] { (void)fg::core::spmm(csr, "copy_u", "sum", sched, ops); });
  const double overhead_frac = spmm_sec > 0.0 ? instr_per_launch / spmm_sec
                                              : 0.0;

  const bool overhead_ok = overhead_frac < 0.01;
  const bool spans_ok = traced_spans > 0;
  std::printf("spmm launch:          %.3f ms\n", spmm_sec * 1e3);
  std::printf("disabled instr/launch: %.1f ns  (%.4f%% of the launch)\n",
              instr_per_launch * 1e9, overhead_frac * 100.0);
  std::printf("tracing bit-identity:  %s\n", identical ? "PASS" : "FAIL");
  std::printf("overhead < 1%%:         %s\n", overhead_ok ? "PASS" : "FAIL");
  std::printf("traced spans recorded: %lld (%s)\n",
              static_cast<long long>(traced_spans),
              spans_ok ? "PASS" : "FAIL");

  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"spmm_sec\": %.6f, \"disabled_instr_ns_per_launch\": %.1f, "
      "\"overhead_frac\": %.6f, \"bit_identical\": %s, "
      "\"traced_spans\": %lld, \"gate\": \"%s\"}",
      spmm_sec, instr_per_launch * 1e9, overhead_frac,
      identical ? "true" : "false", static_cast<long long>(traced_spans),
      identical && overhead_ok && spans_ok ? "pass" : "fail");
  fb::splice_json_section("BENCH_kernels.json", "observability", buf);
  std::printf("BENCH_kernels.json: observability section updated\n");

  if (!identical || !overhead_ok || !spans_ok) return 1;
  return 0;
}
