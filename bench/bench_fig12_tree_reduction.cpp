// Figure 12: effect of tree reduction on the GPU performance of dot-product
// attention (rand-100K, simulated V100).
//
// Paper headline: tree reduction boosts dot-product attention by up to 2x;
// the one-thread-per-edge strategy (Gunrock's, and FeatGraph without the
// tree-reduction FDS) degrades at large feature lengths from register
// pressure.
#include <cstdio>

#include "baselines/gunrock_sim.hpp"
#include "common.hpp"
#include "gpusim/sddmm_gpu.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Figure 12",
                   "tree reduction ablation (dot-product attention, "
                   "rand-100K, simulated V100)");
  const auto d = fg::graph::make_rand_100k(fb::dataset_scale());

  Table t({"feat len", "Gunrock (ms)", "FG w/o tree (ms)", "FG w/ tree (ms)",
           "w/o tree vs Gunrock", "w/ tree vs Gunrock"});
  for (std::int64_t len : fb::paper_feature_lengths()) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
    const fg::core::SddmmOperands ops{&x, nullptr};
    const auto gunrock = fg::baselines::gunrock::sddmm(d.graph.coo(), "dot", ops);
    fg::core::GpuSddmmSchedule no_tree;
    no_tree.tree_reduce = false;
    const auto fg_serial = fg::gpusim::sddmm_gpu(d.graph.coo(), "dot", no_tree, ops);
    const auto fg_tree = fg::gpusim::sddmm_gpu(d.graph.coo(), "dot", {}, ops);
    t.add_row({std::to_string(len), Table::num(gunrock.milliseconds(), 2),
               Table::num(fg_serial.milliseconds(), 2),
               Table::num(fg_tree.milliseconds(), 2),
               fb::speedup_str(gunrock.cost.total_s, fg_serial.cost.total_s),
               fb::speedup_str(gunrock.cost.total_s, fg_tree.cost.total_s)});
  }
  t.print();
  std::printf("\npaper: tree reduction gains grow with feature length, up to ~2x\n");
  return 0;
}
