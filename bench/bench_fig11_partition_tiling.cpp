// Figure 11: effect of graph partitioning and feature-dimension tiling on
// the CPU performance of GCN aggregation (reddit-like, single thread).
//
// Paper headline at feature length 512: tiling alone 1.2x, partitioning
// alone 1.7x, combined 2.2x over the unoptimized kernel.
//
// The experiment regime matters (Fig. 6): the feature matrix must exceed
// the LLC several times (so the baseline misses), the average degree must
// be high (so source rows are re-read often and out-row merge cost
// amortizes), and — exactly as Fig. 6b argues — tiling lets the combined
// config use FEWER graph partitions than partitioning alone, trading one
// extra adjacency sweep per tile for cheaper merges. The dataset is sized
// to reproduce those ratios on a ~25 MB-LLC host: 50K vertices, degree 250
// (vs the paper's 233K / 493 at a 25 MB LLC).
#include <cstdio>

#include "common.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

namespace {

constexpr double kLlcShare = 12.5 * 1024 * 1024;  // half of a 25 MB LLC

int partitions_for(std::int64_t num_vertices, std::int64_t width) {
  const double bytes = static_cast<double>(num_vertices) * width * 4.0;
  return std::max(1, static_cast<int>(std::ceil(bytes / kLlcShare)));
}

}  // namespace

int main() {
  fb::print_banner("Figure 11",
                   "graph partitioning x feature tiling ablation "
                   "(GCN aggregation, reddit-like, 1 thread)");
  const fg::graph::Dataset d{
      "reddit-like",
      fg::graph::Graph(fg::graph::gen_community(50000, 250.0, 50, 0.7, 22))};
  std::printf("dataset: %d vertices, %lld edges (sized so features span "
              "1-4x a 25 MB LLC and merge cost amortizes; see header)\n\n",
              d.graph.num_vertices(),
              static_cast<long long>(d.graph.num_edges()));

  constexpr std::int64_t kTile = 64;
  Table t({"feat len", "config", "schedule", "seconds",
           "speedup vs baseline"});
  for (std::int64_t len : {std::int64_t{128}, std::int64_t{256},
                           std::int64_t{512}}) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
    const int parts_full = partitions_for(d.graph.num_vertices(), len);
    const int parts_tiled = partitions_for(d.graph.num_vertices(), kTile);

    struct Config {
      const char* name;
      int partitions;
      std::int64_t tile;
    };
    // Fig. 6b: tiling reduces the number of partitions needed (paper: 4 -> 2).
    const Config configs[] = {
        {"baseline", 1, 0},
        {"feature tiling", 1, kTile},
        {"graph partitioning", parts_full, 0},
        {"tiling + partitioning", parts_tiled, kTile},
    };

    double baseline = 0.0;
    for (const auto& cfg : configs) {
      fg::core::CpuSpmmSchedule sched;
      sched.num_partitions = cfg.partitions;
      sched.feat_tile = std::min<std::int64_t>(cfg.tile, len);
      const double secs = fb::measure_seconds([&] {
        (void)fg::core::spmm(d.graph.in_csr(), "copy_u", "sum", sched,
                             {&x, nullptr, nullptr});
      });
      if (baseline == 0.0) baseline = secs;
      char sched_str[48];
      std::snprintf(sched_str, sizeof(sched_str), "parts=%d tile=%lld",
                    cfg.partitions, static_cast<long long>(sched.feat_tile));
      t.add_row({std::to_string(len), cfg.name, sched_str,
                 Table::num(secs, 4), fb::speedup_str(baseline, secs)});
    }
  }
  t.print();
  std::printf("\npaper @512: tiling 1.2x, partitioning 1.7x, combined 2.2x\n");
  return 0;
}
