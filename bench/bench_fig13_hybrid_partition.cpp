// Figure 13: effect of hybrid partitioning on the GPU performance of GCN
// aggregation (rand-100K, simulated V100), relative to cuSPARSE.
//
// Paper headline: hybrid partitioning gains 10-20%, which is what pushes
// FeatGraph past cuSPARSE on this skewed dataset.
#include <cstdio>

#include "baselines/cusparse_sim.hpp"
#include "common.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Figure 13",
                   "hybrid partitioning ablation (GCN aggregation, "
                   "rand-100K, simulated V100)");
  const auto d = fg::graph::make_rand_100k(fb::dataset_scale());

  Table t({"feat len", "cuSPARSE (ms)", "FG w/o hybrid (ms)",
           "FG w/ hybrid (ms)", "w/o vs cuSPARSE", "w/ vs cuSPARSE"});
  for (std::int64_t len : fb::paper_feature_lengths()) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
    const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
    const auto cusparse = fg::baselines::cusparse::spmm(d.graph.in_csr(), ops);

    fg::core::GpuSpmmSchedule plain;
    plain.num_blocks = std::max<std::int64_t>(1280, d.graph.num_vertices() / 32);
    plain.threads_per_block = 256;
    fg::core::GpuSpmmSchedule hybrid = plain;
    hybrid.hybrid_partition = true;

    const auto fg_plain =
        fg::gpusim::spmm_gpu(d.graph.in_csr(), "copy_u", "sum", plain, ops);
    const auto fg_hybrid =
        fg::gpusim::spmm_gpu(d.graph.in_csr(), "copy_u", "sum", hybrid, ops);
    t.add_row({std::to_string(len), Table::num(cusparse.milliseconds(), 2),
               Table::num(fg_plain.milliseconds(), 2),
               Table::num(fg_hybrid.milliseconds(), 2),
               fb::speedup_str(cusparse.cost.total_s, fg_plain.cost.total_s),
               fb::speedup_str(cusparse.cost.total_s, fg_hybrid.cost.total_s)});
  }
  t.print();
  std::printf("\npaper: hybrid partitioning adds 10-20%%, beating cuSPARSE\n");
  return 0;
}
