// Table IV: GPU kernel performance (simulated V100, unit: ms) for
//   (a) GCN aggregation       — Gunrock vs cuSPARSE vs FeatGraph
//   (b) MLP aggregation       — Gunrock vs FeatGraph (cuSPARSE unsupported)
//   (c) dot-product attention — Gunrock vs FeatGraph (cuSPARSE unsupported)
//
// Paper headline: FeatGraph 24-206x over Gunrock on GCN aggregation,
// 18-96x on MLP aggregation, 1.2-3.1x on dot-product attention; on par with
// cuSPARSE for GCN aggregation (10-20% faster on ogbn-proteins/rand-100K
// thanks to hybrid partitioning, ~10% slower on reddit).
#include <cstdio>

#include "baselines/cusparse_sim.hpp"
#include "baselines/gunrock_sim.hpp"
#include "common.hpp"
#include "gpusim/sddmm_gpu.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

namespace {

fg::core::GpuSpmmSchedule featgraph_spmm_schedule(const fg::graph::Dataset& d,
                                                  std::int64_t len) {
  (void)len;
  fg::core::GpuSpmmSchedule sched;
  sched.threads_per_block = 256;
  // Hybrid partitioning pays off on skewed datasets (proteins, rand-100K);
  // reddit's flat degree distribution offers no smem reuse (Table IVa).
  sched.hybrid_partition = d.name != "reddit";
  // Enough blocks to fill the device even at small benchmark scales.
  sched.num_blocks =
      std::max<std::int64_t>(1280, d.graph.num_vertices() / 32);
  return sched;
}

void gcn_aggregation(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("--- (a) GCN aggregation (unit: ms, simulated V100) ---\n");
  Table t({"dataset", "feat len", "Gunrock", "cuSPARSE", "FeatGraph",
           "FG vs Gunrock", "FG vs cuSPARSE"});
  for (const auto& d : datasets) {
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
      const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
      const auto gunrock =
          fg::baselines::gunrock::spmm(d.graph.in_csr(), "copy_u", "sum", ops);
      const auto cusparse = fg::baselines::cusparse::spmm(d.graph.in_csr(), ops);
      const auto featgraph = fg::gpusim::spmm_gpu(
          d.graph.in_csr(), "copy_u", "sum", featgraph_spmm_schedule(d, len),
          ops);
      t.add_row({d.name, std::to_string(len),
                 Table::num(gunrock.milliseconds(), 2),
                 Table::num(cusparse.milliseconds(), 2),
                 Table::num(featgraph.milliseconds(), 2),
                 fb::speedup_str(gunrock.cost.total_s, featgraph.cost.total_s),
                 fb::speedup_str(cusparse.cost.total_s,
                                 featgraph.cost.total_s)});
    }
  }
  t.print();
}

void mlp_aggregation(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("\n--- (b) MLP aggregation (d1=8; unit: ms, simulated V100); "
              "cuSPARSE: unsupported ---\n");
  Table t({"dataset", "feat len", "Gunrock", "FeatGraph", "FG vs Gunrock"});
  for (const auto& d : datasets) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), 8}, 2);
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor w = Tensor::randn({8, len}, 3);
      const fg::core::SpmmOperands ops{&x, nullptr, &w};
      const auto gunrock =
          fg::baselines::gunrock::spmm(d.graph.in_csr(), "mlp", "max", ops);
      fg::core::GpuSpmmSchedule sched;
      sched.num_blocks = std::max<std::int64_t>(4096, d.graph.num_vertices());
      const auto featgraph =
          fg::gpusim::spmm_gpu(d.graph.in_csr(), "mlp", "max", sched, ops);
      t.add_row({d.name, std::to_string(len),
                 Table::num(gunrock.milliseconds(), 2),
                 Table::num(featgraph.milliseconds(), 2),
                 fb::speedup_str(gunrock.cost.total_s, featgraph.cost.total_s)});
    }
  }
  t.print();
}

void dot_attention(const std::vector<fg::graph::Dataset>& datasets) {
  std::printf("\n--- (c) dot-product attention (unit: ms, simulated V100); "
              "cuSPARSE: unsupported ---\n");
  Table t({"dataset", "feat len", "Gunrock", "FeatGraph", "FG vs Gunrock"});
  for (const auto& d : datasets) {
    for (std::int64_t len : fb::paper_feature_lengths()) {
      const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 4);
      const fg::core::SddmmOperands ops{&x, nullptr};
      const auto gunrock = fg::baselines::gunrock::sddmm(d.graph.coo(), "dot", ops);
      const auto featgraph =
          fg::gpusim::sddmm_gpu(d.graph.coo(), "dot", {}, ops);
      t.add_row({d.name, std::to_string(len),
                 Table::num(gunrock.milliseconds(), 2),
                 Table::num(featgraph.milliseconds(), 2),
                 fb::speedup_str(gunrock.cost.total_s, featgraph.cost.total_s)});
    }
  }
  t.print();
}

}  // namespace

int main() {
  fb::print_banner("Table IV", "GPU kernel performance (gpusim)");
  const auto datasets = fg::graph::standard_datasets(fb::dataset_scale());
  gcn_aggregation(datasets);
  mlp_aggregation(datasets);
  dot_attention(datasets);
  return 0;
}
