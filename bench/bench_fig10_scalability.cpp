// Figure 10: multi-threaded scalability of GCN aggregation on reddit with
// feature length 512, 1..16 threads, FeatGraph vs Ligra vs MKL.
//
// Paper headline: at 16 threads FeatGraph reaches 12.6x over its own
// single-threaded execution vs 9.5x (Ligra) and 9.8x (MKL), because
// (1) threads cooperate on one graph partition at a time (no LLC
// contention) and (2) the TVM-style thread pool is lightweight.
//
// Method (see DESIGN.md §1): this host may have fewer than 16 cores, so the
// curve comes from the calibrated scaling model: per-chunk single-thread
// costs are MEASURED on the mini-scale dataset, projected to the paper-scale
// graph, and scheduled onto k virtual workers with an LLC-contention +
// bandwidth-roofline model of the paper's 18-core Xeon.
#include <cstdio>

#include "baselines/ligra.hpp"
#include "baselines/vendor_spmm.hpp"
#include "common.hpp"
#include "parallel/scaling_model.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::parallel::SchedulingMode;
using fg::parallel::WorkChunk;
using fg::support::Table;
using fg::tensor::Tensor;

namespace {

constexpr std::int64_t kFeatLen = 512;

struct SystemProfile {
  const char* name;
  SchedulingMode mode;
  std::vector<WorkChunk> chunks;  // projected to paper scale
};

}  // namespace

int main() {
  fb::print_banner("Figure 10",
                   "scalability of GCN aggregation (reddit, feat len 512)");

  // Mini-scale measurement to calibrate per-edge-per-feature cost.
  const auto mini = fg::graph::make_reddit_like(fb::dataset_scale());
  const Tensor x = Tensor::randn({mini.graph.num_vertices(), kFeatLen}, 1);
  const double mini_work =
      static_cast<double>(mini.graph.num_edges()) * kFeatLen;

  const double ligra_per_unit =
      fb::measure_seconds(
          [&] { (void)fg::baselines::ligra::gcn_aggregate(mini.graph, x, 1); }) /
      mini_work;
  const double mkl_per_unit =
      fb::measure_seconds([&] {
        (void)fg::baselines::vendor::csr_spmm(mini.graph.in_csr(), x, 1);
      }) /
      mini_work;
  fg::core::CpuSpmmSchedule fg_sched;
  fg_sched.num_partitions = 16;
  fg_sched.feat_tile = 64;
  const double fg_per_unit =
      fb::measure_seconds([&] {
        (void)fg::core::spmm(mini.graph.in_csr(), "copy_u", "sum", fg_sched,
                             {&x, nullptr, nullptr});
      }) /
      mini_work;

  // Paper-scale reddit: 233K vertices, 114.8M edges, d = 512.
  const double n_full = 233000.0, m_full = 114.8e6;
  const double work_full = m_full * kFeatLen;
  const double feat_bytes = n_full * kFeatLen * 4.0;  // 477 MB of features

  // FeatGraph: 16 partitions x 8 feature tiles of 64; each chunk touches one
  // partition's source slice (fits the LLC by construction).
  std::vector<WorkChunk> fg_chunks;
  for (int c = 0; c < 16 * 8; ++c)
    fg_chunks.push_back({fg_per_unit * work_full / (16 * 8),
                         feat_bytes / 16 / 8 + m_full * 4.0 / 16});
  // Ligra / MKL: 64 destination-row blocks; every block streams scattered
  // source rows, so its working set is the whole feature matrix slice it
  // touches (no tiling, no partitioning).
  auto row_block_chunks = [&](double per_unit) {
    std::vector<WorkChunk> chunks;
    for (int c = 0; c < 64; ++c)
      chunks.push_back({per_unit * work_full / 64,
                        m_full / 64 * kFeatLen * 4.0});
    return chunks;
  };

  SystemProfile systems[] = {
      {"FeatGraph", SchedulingMode::kCooperative, fg_chunks},
      {"Ligra", SchedulingMode::kIndependent, row_block_chunks(ligra_per_unit)},
      {"MKL-like", SchedulingMode::kIndependent, row_block_chunks(mkl_per_unit)},
  };

  Table t({"threads", "FeatGraph speedup", "Ligra speedup", "MKL speedup"});
  fg::parallel::ScalingModelParams params;
  std::vector<double> base(3);
  for (int s = 0; s < 3; ++s)
    base[static_cast<std::size_t>(s)] = fg::parallel::predict_parallel_seconds(
        systems[s].chunks, 1, systems[s].mode, params);
  for (int k : {1, 2, 4, 8, 16}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (int s = 0; s < 3; ++s) {
      const double tk = fg::parallel::predict_parallel_seconds(
          systems[s].chunks, k, systems[s].mode, params);
      row.push_back(Table::num(base[static_cast<std::size_t>(s)] / tk, 2) + "x");
    }
    t.add_row(row);
  }
  t.print();
  std::printf("\npaper @16 threads: FeatGraph 12.6x, MKL 9.8x, Ligra 9.5x\n");
  return 0;
}
