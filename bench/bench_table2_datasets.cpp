// Table II: graph datasets (|V|, |E|, average degree).
//
// Paper values (full scale): ogbn-proteins 132.5K / 79.1M / 597,
// reddit 233.0K / 114.8M / 493, rand-100K 100.0K / 48.0M / 480.
// This binary prints the regenerated (scaled) datasets' actual statistics.
#include <cstdio>

#include "common.hpp"
#include "graph/stats.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;

int main() {
  fb::print_banner("Table II", "graph datasets");
  const double scale = fb::dataset_scale();

  fg::support::Table t({"dataset", "|V|", "|E|", "avg degree", "degree gini",
                        "top-20% edge share"});
  for (const auto& d : fg::graph::standard_datasets(scale)) {
    const auto stats = fg::graph::source_degree_stats(d.graph.in_csr());
    const double hub_share =
        fg::graph::high_degree_edge_fraction(d.graph.in_csr(), 0.8);
    t.add_row({d.name, std::to_string(d.graph.num_vertices()),
               std::to_string(d.graph.num_edges()),
               fg::support::Table::num(d.graph.average_degree(), 1),
               fg::support::Table::num(stats.gini, 2),
               fg::support::Table::num(hub_share * 100, 0) + "%"});
  }
  t.print();
  std::printf("\n(degree skew is what hybrid partitioning exploits: "
              "proteins/rand-100K are skewed, reddit is flat)\n");
  std::printf("\npaper (scale 1.0): proteins 132.5K/79.1M/597, "
              "reddit 233.0K/114.8M/493, rand-100K 100.0K/48.0M/480\n");
  return 0;
}
