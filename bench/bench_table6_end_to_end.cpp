// Table VI: end-to-end GNN training and inference speedup from FeatGraph,
// on a reddit-like classification task.
//
//   DGL w/o FeatGraph = minidgl with the Materialize backend (per-edge
//   message tensors gathered, then segment-reduced — DGL's fallback path);
//   DGL w/  FeatGraph = minidgl with the Fused backend (FeatGraph kernels).
//
// CPU rows are measured wall-clock; GPU rows are simulated V100 seconds.
// Paper headline: >20x training & inference on CPU for all three models;
// 2.1-2.9x training and 1.4-7.1x inference on GPU; GAT training without
// FeatGraph exhausts GPU memory at paper scale (*N/A) — we report the
// projected full-scale materialized footprint to reproduce that footnote.
//
// Accuracy (Sec. V-E): both backends are trained briefly and must reach the
// same test accuracy — FeatGraph changes performance, not semantics.
#include <cstdio>

#include "common.hpp"
#include "minidgl/train.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::minidgl::Device;
using fg::minidgl::ExecContext;
using fg::minidgl::Model;
using fg::minidgl::SparseBackend;
using fg::minidgl::Trainer;
using fg::support::Table;

namespace {

struct ModelSpec {
  const char* display;
  const char* kind;
  std::int64_t hidden;
};

ExecContext make_ctx(SparseBackend backend, Device device) {
  ExecContext ctx;
  ctx.backend = backend;
  ctx.device = device;
  ctx.num_threads = 2;
  return ctx;
}

}  // namespace

int main() {
  fb::print_banner("Table VI", "end-to-end GNN training & inference");

  // reddit-like classification task, scaled. Hidden sizes follow the
  // paper's ratio (GCN 512, GraphSage/GAT 256) shrunk 4x to keep the full
  // table under a couple of minutes on a laptop.
  const double scale = fb::dataset_scale(0.35);
  const auto n = static_cast<fg::graph::vid_t>(233000 * scale);
  const double deg = 493.0 * fg::graph::degree_scale_for(scale);
  const auto data = fg::minidgl::make_sbm_classification(
      n, deg, /*num_classes=*/8, /*p_in=*/0.8, /*feat_dim=*/32,
      /*signal=*/2.0f, /*seed=*/5);
  std::printf("task: %d vertices, %lld edges, 32-dim features, 8 classes\n\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()));

  // GraphSage uses its default mean aggregator here (the paper's headline
  // configuration; the max variant is exercised by the test suite).
  const ModelSpec models[] = {
      {"GCN", "gcn", 128}, {"GraphSage", "sage-mean", 64}, {"GAT", "gat", 64}};
  const double full_scale_edges = 114.8e6;
  const double edge_ratio =
      full_scale_edges / static_cast<double>(data.graph.num_edges());

  for (auto device : {Device::kCpu, Device::kGpuSim}) {
    const bool is_gpu = device == Device::kGpuSim;
    const char* dev_name = is_gpu ? "GPU (simulated)" : "CPU";
    const char* unit = is_gpu ? "ms" : "s";
    const double unit_scale = is_gpu ? 1e3 : 1.0;
    std::printf("--- %s ---\n", dev_name);
    Table t({"model", "phase", std::string("w/o FeatGraph (") + unit + ")",
             std::string("w/ FeatGraph (") + unit + ")", "speedup", "note"});
    for (const auto& spec : models) {
      double secs[2][2];        // [backend][phase: train, infer]
      double mat_bytes = 0.0;   // materialized bytes per epoch (w/o FG)
      for (int b = 0; b < 2; ++b) {
        const auto backend =
            b == 0 ? SparseBackend::kMaterialize : SparseBackend::kFused;
        Trainer trainer(data, Model(spec.kind, 32, spec.hidden, 8, 1),
                        make_ctx(backend, device), 0.05f);
        // One warm-up epoch (first-touch partitioning etc.), then measure.
        trainer.train_epoch();
        const auto tr = trainer.train_epoch();
        const auto inf = trainer.infer();
        secs[b][0] = tr.seconds;
        secs[b][1] = inf.seconds;
        if (b == 0) mat_bytes = tr.materialized_bytes;
      }
      // The paper's GAT-OOM footnote: DGL's builtin (Minigun) kernels cover
      // GCN/GraphSage aggregation even without FeatGraph, but GAT's
      // attention pattern forces per-edge materialization — whose
      // footprint, projected to full-scale reddit, exceeds a V100's 16 GB.
      std::string note;
      if (is_gpu && std::string(spec.kind) == "gat") {
        const double projected = mat_bytes * edge_ratio;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "w/o FG materializes %.0f GB @full scale%s",
                      projected / 1e9, projected > 16e9 ? " -> OOM (*N/A)" : "");
        note = buf;
      }
      t.add_row({spec.display, "training",
                 Table::num(secs[0][0] * unit_scale, 3),
                 Table::num(secs[1][0] * unit_scale, 3),
                 fb::speedup_str(secs[0][0], secs[1][0]), note});
      t.add_row({spec.display, "inference",
                 Table::num(secs[0][1] * unit_scale, 3),
                 Table::num(secs[1][1] * unit_scale, 3),
                 fb::speedup_str(secs[0][1], secs[1][1]), ""});
    }
    t.print();
    std::printf("\n");
  }

  // Accuracy sanity check (Sec. V-E): same task, both backends, short run.
  std::printf("--- accuracy check (15 epochs, CPU) ---\n");
  Table acc({"model", "test acc w/o FeatGraph", "test acc w/ FeatGraph"});
  for (const auto& spec : models) {
    double a[2];
    for (int b = 0; b < 2; ++b) {
      const auto backend =
          b == 0 ? SparseBackend::kMaterialize : SparseBackend::kFused;
      Trainer trainer(data, Model(spec.kind, 32, spec.hidden, 8, 1),
                      make_ctx(backend, Device::kCpu), 0.05f);
      fg::minidgl::train(trainer, 15);
      a[b] = trainer.test_accuracy();
    }
    acc.add_row({spec.display, Table::num(a[0] * 100, 1) + "%",
                 Table::num(a[1] * 100, 1) + "%"});
  }
  acc.print();
  std::printf("\npaper: CPU speedups 20.2x-32.2x, GPU training 2.1-2.9x, GPU "
              "inference 1.4-7.1x; accuracy unchanged by the backend\n");
  return 0;
}
