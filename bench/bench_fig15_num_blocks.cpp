// Figure 15: sensitivity of FeatGraph GPU performance to the number of CUDA
// blocks (GCN aggregation, reddit, feature length 128, simulated V100).
//
// Paper headline: more blocks utilize the device better; time drops until
// the grid saturates the SMs and then flattens (the paper sets #blocks to
// the number of adjacency rows).
#include <cstdio>

#include "common.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Figure 15",
                   "CUDA block-count sensitivity (GCN aggregation, reddit, "
                   "feat len 128, simulated V100)");
  const auto d = fg::graph::make_reddit_like(fb::dataset_scale());
  const Tensor x = Tensor::randn({d.graph.num_vertices(), 128}, 1);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};

  Table t({"# CUDA blocks", "time (ms)"});
  for (std::int64_t blocks : {256, 1024, 4096, 16384, 65536, 262144}) {
    fg::core::GpuSpmmSchedule sched;
    sched.num_blocks = blocks;
    sched.threads_per_block = 128;  // feature axis bound to threads
    const auto r =
        fg::gpusim::spmm_gpu(d.graph.in_csr(), "copy_u", "sum", sched, ops);
    t.add_row({std::to_string(blocks), Table::num(r.milliseconds(), 3)});
  }
  t.print();
  std::printf("\npaper: time decreases with block count until the device "
              "saturates, then flattens\n");
  return 0;
}
