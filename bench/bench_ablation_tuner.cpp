// Ablation: naive grid search (the paper's tuner, Sec. IV-A) vs the
// budgeted hill-climbing tuner (the paper's future-work item, implemented
// in core/smart_tuner). Reports trials used and the quality of the found
// schedule on real kernels across feature lengths.
#include <cstdio>

#include "common.hpp"
#include "core/smart_tuner.hpp"
#include "core/tuner.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Tuner ablation",
                   "grid search vs budgeted hill climbing (GCN aggregation)");
  const auto d = fg::graph::make_reddit_like(fb::dataset_scale());

  Table t({"feat len", "grid trials", "grid best (ms)", "smart trials",
           "smart best (ms)", "smart vs grid"});
  for (std::int64_t len : {std::int64_t{64}, std::int64_t{128},
                           std::int64_t{256}}) {
    const Tensor x = Tensor::randn({d.graph.num_vertices(), len}, 1);
    const fg::core::SpmmOperands ops{&x, nullptr, nullptr};

    const auto grid = fg::core::default_spmm_candidates(len, 1);
    const auto grid_result =
        fg::core::tune_spmm(d.graph.in_csr(), "copy_u", "sum", ops, grid, 1);

    const auto smart = fg::core::smart_tune_spmm(
        len, 1,
        [&](const CpuSpmmSchedule& s) {
          return fg::support::time_mean_seconds(
              [&] {
                (void)fg::core::spmm(d.graph.in_csr(), "copy_u", "sum", s,
                                     ops);
              },
              1);
        },
        fg::core::SmartTuneOptions{.max_trials = 10});

    t.add_row({std::to_string(len), std::to_string(grid.size()),
               Table::num(grid_result.best_seconds * 1e3, 2),
               std::to_string(smart.trials_used),
               Table::num(smart.best_seconds * 1e3, 2),
               fb::speedup_str(smart.best_seconds,
                               grid_result.best_seconds)});
  }
  t.print();
  std::printf("\nfuture-work claim: a budget of ~10 trials reaches grid-search "
              "quality with ~1/3 of the measurements\n");
  return 0;
}
