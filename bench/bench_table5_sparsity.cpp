// Table V: sensitivity of FeatGraph CPU performance to graph sparsity for
// GCN aggregation (uniform synthetic graph, 100K * scale vertices, feature
// length 128), MKL-like vs FeatGraph.
//
// Paper headline: FeatGraph's advantage over MKL grows as the graph gets
// denser (1.10x at 99.95% sparsity -> 2.91x at 95%), because denser graphs
// have more source-row reuse for partitioning + tiling to exploit.
#include <cstdio>

#include "baselines/vendor_spmm.hpp"
#include "common.hpp"
#include "core/tuner.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Table V",
                   "graph-sparsity sensitivity (GCN aggregation, uniform "
                   "graph, feat len 128, 1 thread)");
  constexpr std::int64_t kFeatLen = 128;

  Table t({"sparsity", "|V|", "|E|", "MKL-like (s)", "FeatGraph (s)",
           "speedup"});
  // Run at the paper's full vertex count (100K): the mechanism — denser
  // graphs re-read each source row more often, and partitioning + tiling
  // capture that reuse once the feature matrix (51 MB at d=128) exceeds the
  // LLC — disappears on shrunken graphs whose features fit in cache. The
  // density ladder is compressed (0.05% / 0.2% / 0.6% instead of the
  // paper's 0.05% / 0.5% / 5%) to keep single-thread sweeps tractable.
  for (double density : {0.0005, 0.002, 0.006}) {
    const auto d = fg::graph::make_uniform_density(1.0, density);
    const Tensor x = Tensor::randn({d.graph.num_vertices(), kFeatLen}, 1);
    const double mkl = fb::measure_seconds(
        [&] { (void)fg::baselines::vendor::csr_spmm(d.graph.in_csr(), x, 1); });

    const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
    // Tune the partition count per input shape (the paper's methodology;
    // tuning time is excluded, amortized over epochs). A compact candidate
    // set keeps the harness fast at 60M edges.
    std::vector<fg::core::CpuSpmmSchedule> grid;
    for (int parts : {1, 8, 16}) {
      fg::core::CpuSpmmSchedule s;
      s.num_partitions = parts;
      grid.push_back(s);
    }
    const auto sched =
        fg::core::tune_spmm(d.graph.in_csr(), "copy_u", "sum", ops, grid).best;
    const double featgraph = fb::measure_seconds([&] {
      (void)fg::core::spmm(d.graph.in_csr(), "copy_u", "sum", sched, ops);
    });

    char sparsity[32];
    std::snprintf(sparsity, sizeof(sparsity), "%.2f%%", 100.0 * (1 - density));
    t.add_row({sparsity, std::to_string(d.graph.num_vertices()),
               std::to_string(d.graph.num_edges()), Table::num(mkl, 4),
               Table::num(featgraph, 4), fb::speedup_str(mkl, featgraph)});
  }
  t.print();
  std::printf("\npaper: 1.10x @99.95%%, 1.84x @99.5%%, 2.91x @95%% — the gap "
              "widens with density\n");
  return 0;
}
