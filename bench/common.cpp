#include "common.hpp"

#include <cstdio>

#include "core/simd.hpp"

namespace featgraph::bench {

double measure_seconds(const std::function<void()>& fn) {
  return support::time_mean_seconds(fn, support::bench_reps());
}

void print_banner(const std::string& experiment, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), what.c_str());
  std::printf("(FEATGRAPH_SCALE=%.3g, FEATGRAPH_BENCH_REPS=%d, "
              "simd=%s; see EXPERIMENTS.md for paper-vs-measured "
              "discussion)\n\n",
              support::bench_scale(), support::bench_reps(),
              simd::isa_name(simd::active_isa()));
}

double dataset_scale(double extra_shrink) {
  return support::bench_scale() * extra_shrink;
}

std::string speedup_str(double baseline_seconds, double system_seconds) {
  if (system_seconds <= 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", baseline_seconds / system_seconds);
  return buf;
}

}  // namespace featgraph::bench
