#include "common.hpp"

#include <cstdio>
#include <thread>

#include "core/simd.hpp"
#include "parallel/thread_pool.hpp"

namespace featgraph::bench {

double measure_seconds(const std::function<void()>& fn) {
  return support::time_mean_seconds(fn, support::bench_reps());
}

void print_banner(const std::string& experiment, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), what.c_str());
  std::printf("(FEATGRAPH_SCALE=%.3g, FEATGRAPH_BENCH_REPS=%d, "
              "simd=%s; see EXPERIMENTS.md for paper-vs-measured "
              "discussion)\n\n",
              support::bench_scale(), support::bench_reps(),
              simd::isa_name(simd::active_isa()));
}

double dataset_scale(double extra_shrink) {
  return support::bench_scale() * extra_shrink;
}

std::string speedup_str(double baseline_seconds, double system_seconds) {
  if (system_seconds <= 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", baseline_seconds / system_seconds);
  return buf;
}

std::string slurp_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

std::string host_info_json() {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"hardware_concurrency\": %u, \"isa\": \"%s\", "
                "\"workers\": %u}",
                std::thread::hardware_concurrency(),
                simd::isa_name(simd::active_isa()),
                parallel::ThreadPool::global().num_workers());
  return buf;
}

void splice_json_section(const char* path, const std::string& key,
                         const std::string& body) {
  // Stamp the host into every object-valued section (first key, zero
  // call-site churn): a BENCH number without the machine and ISA it was
  // measured on is unreadable a PR later.
  std::string stamped = body;
  if (!stamped.empty() && stamped.front() == '{' &&
      stamped.find("\"host\"") == std::string::npos) {
    const std::size_t first = stamped.find_first_not_of(" \n", 1);
    const std::string host = "\"host\": " + host_info_json();
    if (first != std::string::npos && stamped[first] == '}')
      stamped.insert(1, host);
    else
      stamped.insert(1, host + ",\n    ");
  }
  std::string json = slurp_file(path);
  const auto key_pos = json.find("\"" + key + "\"");
  if (key_pos != std::string::npos) {
    // Excise ONLY this section — several bench binaries each own a section
    // of the same file, so truncating from the key to the end would eat
    // whichever sections happened to be spliced after ours. A section's
    // value is a balanced {...} object: scan to its matching close brace,
    // then drop either our trailing comma (mid-object) or the preceding one
    // (last entry) so exactly one separator joins the neighbours.
    std::size_t end = json.find('{', key_pos);
    for (int depth = 0; end < json.size(); ++end) {
      if (json[end] == '{') ++depth;
      if (json[end] == '}' && --depth == 0) break;
    }
    const std::size_t after = json.find_first_not_of(" \n", end + 1);
    if (after != std::string::npos && json[after] == ',') {
      // Mid-object: erase through the comma and the whitespace before the
      // next key, leaving the next entry where ours began.
      const std::size_t next = json.find_first_not_of(" \n", after + 1);
      json.erase(key_pos, (next == std::string::npos ? json.size() : next) -
                              key_pos);
    } else {
      // Last entry: erase back through the separator that preceded us.
      const auto cut = json.rfind(",\n", key_pos);
      const std::size_t begin =
          cut != std::string::npos ? cut : json.find('{') + 1;
      json.erase(begin, (after == std::string::npos ? json.size() : after) -
                            begin);
    }
  }
  const auto close = json.rfind('}');
  json.erase(close != std::string::npos ? close : 0);
  while (!json.empty() && (json.back() == '\n' || json.back() == ' '))
    json.pop_back();
  // A fresh or single-entry file leaves "" or "{": open the object and skip
  // the separating comma; otherwise append after the surviving entries.
  const bool first_entry = json.empty() || json == "{";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "%s%s\n  \"%s\": %s\n}\n", first_entry ? "{" : json.c_str(),
               first_entry ? "" : ",", key.c_str(), stamped.c_str());
  std::fclose(f);
}

}  // namespace featgraph::bench
