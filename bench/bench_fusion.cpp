// Op-fusion benchmark (lazy op-graph, pass 1): the GCN-shaped epilogue
// chain spmm -> *scale -> +bias -> ReLU executed eagerly (four |V| x d
// sweeps: the SpMM writes its output, then scale, add_bias and relu each
// read and rewrite it) vs compiled (ONE sweep: the whole tail folds into
// the SpMM row finalize as a [kScale, kBiasRelu] epilogue). On low-degree
// graphs the aggregation itself touches few rows per output, so the extra
// passes are a large fraction of the chain — the fusion win the lazy graph
// exists to collect. Also reports the buffer planner's peak-bytes figure
// for each plan.
//
// Scalar-leg caveat: the scalar span backend deliberately de-vectorizes
// (it is the bit-exactness baseline, FG_SCALAR_FN), while the eager chain's
// elementwise tensor ops are ordinary compiler-vectorized loops — so under
// a scalar pin the fused sweep trades vectorized passes for de-vectorized
// in-sweep steps and loses by construction. Fusion's target is the vector
// ISAs; read the avx2/avx512 rows (best_isa_speedup) for the result.
//
// Splices an "op_fusion" section into BENCH_kernels.json. 1 thread (the
// acceptance configuration); every supported ISA.
//
//   $ ./bench_fusion
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "featgraph.hpp"
#include "minidgl/lazy_graph.hpp"
#include "minidgl/modules.hpp"

namespace fg = featgraph;
using fg::graph::Graph;
using fg::minidgl::ExecContext;
using fg::minidgl::LazyGraph;
using fg::minidgl::make_leaf;
using fg::minidgl::NodeId;
using fg::minidgl::Var;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

struct CellResult {
  double eager_sec = 0.0, fused_sec = 0.0;
  double eager_peak = 0.0, fused_peak = 0.0;
};

struct RowResult {
  std::string name;
  std::vector<CellResult> cells;  // parallel to the ISA list
  double best_isa_speedup = 0.0;
};

}  // namespace

int main() {
  fg::bench::print_banner(
      "op_fusion", "eager elementwise chain vs SpMM-epilogue fused plan");
  const double scale = fg::bench::dataset_scale();
  const auto n = static_cast<fg::graph::vid_t>(300000 * scale);
  const double avg_degree = 4.0;
  Graph graph(fg::graph::gen_uniform(n, avg_degree, 42));
  std::printf("graph: uniform n=%d nnz=%lld, threads 1\n", graph.num_vertices(),
              static_cast<long long>(graph.num_edges()));

  const auto isas = fg::simd::supported_isas();

  // One measurement: the recorded chain under one plan. Recording is a few
  // dozen nodes — negligible against the |V| x d sweeps being timed.
  // Min over several single runs, not a mean: both plans' sweeps are
  // deterministic, so the minimum is the undisturbed time and shrugs off
  // scheduler noise (this bench must hold still on a 1-vCPU box).
  const auto measure2 = [](const std::function<void()>& fn) {
    fn();  // warm-up
    double best = fg::bench::measure_seconds(fn);
    for (int round = 0; round < 6; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::min(best, s);
    }
    return best;
  };
  const auto run_chain = [&](std::int64_t d, bool fuse, double* peak) {
    const Tensor x0 = Tensor::randn({graph.num_vertices(), d}, 7);
    const Tensor b0 = Tensor::randn({d}, 8);
    ExecContext ctx;
    ctx.num_threads = 1;
    ctx.fuse_epilogues = fuse;
    const double sec = measure2([&] {
      ctx.reset_accounting();
      Var x = make_leaf(x0, false, "x");
      Var b = make_leaf(b0, false, "b");
      LazyGraph g;
      const NodeId agg = g.spmm_copy_u(graph, g.leaf(x), "sum");
      const NodeId h =
          g.relu(g.add_bias(g.scale(agg, 0.5f), g.leaf(b)));
      (void)g.run(ctx, h);
    });
    *peak = ctx.peak_bytes;
    return sec;
  };

  // A whole 2-layer GCN forward for context: matmuls dilute the win, this
  // row shows what fusion is worth end to end rather than per chain.
  const auto run_gcn = [&](std::int64_t d, bool fuse, double* peak) {
    const Tensor x0 = Tensor::randn({graph.num_vertices(), d}, 9);
    fg::minidgl::Model model("gcn", d, d, 16, 11);
    ExecContext ctx;
    ctx.num_threads = 1;
    ctx.fuse_epilogues = fuse;
    const double sec = measure2([&] {
      ctx.reset_accounting();
      Var x = make_leaf(x0, false, "x");
      (void)model.forward(ctx, graph, x);
    });
    *peak = ctx.peak_bytes;
    return sec;
  };

  std::vector<RowResult> rows;
  const auto sweep = [&](const std::string& name, std::int64_t d, bool gcn) {
    RowResult row;
    row.name = name;
    for (const Isa isa : isas) {
      fg::simd::ScopedIsa pin(isa);
      CellResult c;
      c.eager_sec = gcn ? run_gcn(d, false, &c.eager_peak)
                        : run_chain(d, false, &c.eager_peak);
      c.fused_sec = gcn ? run_gcn(d, true, &c.fused_peak)
                        : run_chain(d, true, &c.fused_peak);
      const double sp = c.eager_sec / c.fused_sec;
      row.best_isa_speedup = std::max(row.best_isa_speedup, sp);
      std::printf(
          "%-22s %-7s eager %.6f s (peak %6.1f MB)  fused %.6f s "
          "(peak %6.1f MB)  -> %s\n",
          name.c_str(), fg::simd::isa_name(isa), c.eager_sec,
          c.eager_peak / 1e6, c.fused_sec, c.fused_peak / 1e6,
          fg::bench::speedup_str(c.eager_sec, c.fused_sec).c_str());
      row.cells.push_back(c);
    }
    rows.push_back(row);
  };

  sweep("spmm_bias_relu_d64", 64, false);
  sweep("spmm_bias_relu_d128", 128, false);
  sweep("gcn_forward_d64", 64, true);

  // --- splice the "op_fusion" section ------------------------------------
  std::string body = "{\n";
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "    \"graph\": {\"generator\": \"uniform\", \"n\": %d, "
                "\"avg_degree\": %.1f, \"nnz\": %lld},\n"
                "    \"threads\": 1,\n",
                graph.num_vertices(), avg_degree,
                static_cast<long long>(graph.num_edges()));
  body += buf;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RowResult& row = rows[r];
    body += "    \"" + row.name + "\": {\n";
    for (std::size_t i = 0; i < isas.size(); ++i) {
      const CellResult& c = row.cells[i];
      std::snprintf(buf, sizeof buf,
                    "      \"%s\": {\"eager_sec\": %.6f, \"fused_sec\": %.6f, "
                    "\"speedup\": %.2f, \"eager_peak_bytes\": %.0f, "
                    "\"fused_peak_bytes\": %.0f},\n",
                    fg::simd::isa_name(isas[i]), c.eager_sec, c.fused_sec,
                    c.eager_sec / c.fused_sec, c.eager_peak, c.fused_peak);
      body += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "      \"best_isa_speedup\": %.2f\n    }%s\n",
                  row.best_isa_speedup, r + 1 < rows.size() ? "," : "");
    body += buf;
  }
  body += "  }";
  fg::bench::splice_json_section("BENCH_kernels.json", "op_fusion", body);
  std::printf("BENCH_kernels.json: op_fusion section updated\n");
  return 0;
}
