// Multi-tenant serving benchmark (ISSUE 7): p50/p99 request latency and
// queries/sec for coalesced vs solo admission, feature cache on and off,
// over a zipfian open-loop arrival trace. Appends/refreshes the "serving"
// section of BENCH_kernels.json.
//
// Methodology: replay_trace drives the ServingEngine exactly as the live
// Server's admission loop would (window anchored at the oldest pending
// arrival, early cut on request/seed caps, backlog sweeping) on a SIMULATED
// arrival clock, while every batch's service time is the REAL measured
// serve_batch wall time. Per-request latency = simulated completion -
// arrival. This keeps the percentiles honest on any host — on a single-core
// box a live open-loop driver and the serving lane would fight over the
// same CPU and poison the tail.
//
//   $ ./bench_serving
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "minidgl/train.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::graph::vid_t;
using fg::minidgl::ExecContext;
using fg::minidgl::Model;
using fg::minidgl::Trainer;
using fg::serve::TraceRequest;

namespace {

/// Zipf-flavored seed draw: half the traffic concentrates on a small hot
/// set — the power-law request mix the coalescer and feature cache exist
/// for.
vid_t draw_seed(fg::support::Rng& rng, vid_t n, vid_t hot) {
  return rng.uniform(2) == 0
             ? static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(hot)))
             : static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n)));
}

struct Summary {
  double p50 = 0.0, p99 = 0.0, qps = 0.0;
  std::int64_t batches = 0;
  std::int64_t cache_hits = 0, cache_misses = 0, cache_bytes_saved = 0;
};

}  // namespace

int main() {
  fg::bench::print_banner("serving",
                          "multi-tenant coalescing + feature cache latency");
  // Everything below attributes to this baseline: the profile report at the
  // end shows only what the serving runs themselves did. Run with
  // FEATGRAPH_TRACE=trace.json to additionally get the Chrome trace of every
  // serve.batch -> sample/gather/compute/scatter span (CI uploads it).
  const auto obs_baseline = fg::obs::Registry::global().snapshot();
  const double scale = fg::bench::dataset_scale();
  const auto n = static_cast<vid_t>(32768 * scale * 10);
  const auto data = fg::minidgl::make_sbm_classification(
      n, /*avg_degree=*/16.0, /*num_classes=*/8, /*p_in=*/0.85,
      /*feat_dim=*/64, /*signal=*/1.5f, /*seed=*/7);
  std::printf("graph: %d vertices, %lld edges, feat 64\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()));

  ExecContext ctx;
  ctx.num_threads = 1;
  Trainer trainer(data, Model("sage-mean", 64, 64, 8, /*seed=*/1), ctx,
                  0.05f);

  // Open-loop trace: requests of 1-4 seeds arriving at ~13k q/s — past the
  // solo path's per-request service capacity, so solo serving backlogs and
  // coalescing shows its load-shedding value — zipfian over the vertex set
  // (hot set = 1% of vertices).
  const int num_requests = static_cast<int>(512 * scale * 10);
  const vid_t hot = std::max<vid_t>(1, n / 100);
  fg::support::Rng rng(99);
  std::vector<TraceRequest> trace;
  trace.reserve(static_cast<std::size_t>(num_requests));
  double arrival = 0.0;
  for (int r = 0; r < num_requests; ++r) {
    TraceRequest t;
    t.request.id = r;
    const int size = 1 + static_cast<int>(rng.uniform(4));
    for (int k = 0; k < size; ++k) {
      const vid_t v = draw_seed(rng, n, hot);
      if (std::find(t.request.seeds.begin(), t.request.seeds.end(), v) ==
          t.request.seeds.end())
        t.request.seeds.push_back(v);
    }
    arrival += rng.uniform_real() * 0.00015;  // mean inter-arrival 75 us
    t.arrival_s = arrival;
    trace.push_back(std::move(t));
  }
  std::printf("trace: %d requests over %.2f simulated s (zipfian, hot set "
              "%d vertices)\n",
              num_requests, arrival, hot);

  fg::sample::SamplerConfig sampler_cfg;
  sampler_cfg.fanouts = {10, 10};
  sampler_cfg.seed = 3;
  fg::sample::NeighborSampler sampler(data.graph.in_csr(), sampler_cfg);

  std::vector<fg::tensor::Tensor> solo_outputs;
  const auto run = [&](bool coalesce, std::int64_t cache_rows) {
    fg::serve::ServeOptions opts;
    opts.latency_bound_s = coalesce ? 2e-3 : 0.0;
    opts.max_requests_per_batch = coalesce ? 64 : 1;
    opts.num_threads = ctx.num_threads;
    fg::serve::FeatureCache cache(cache_rows, data.features.row_size());
    fg::sample::BlockScheduleCache sched_cache;
    fg::serve::ServingEngine engine(
        sampler, data.features, trainer.make_serve_compute(&sched_cache, false),
        opts, cache_rows > 0 ? &cache : nullptr);
    const auto res = fg::serve::replay_trace(engine, trace);

    // The coalesced configs must reproduce the solo outputs bit for bit —
    // the whole point of the determinism contract (pinned per ISA in
    // tests/test_serve.cpp; re-asserted here on the bench dataset).
    if (solo_outputs.empty()) {
      solo_outputs = std::move(res.outputs);
    } else {
      for (std::size_t r = 0; r < solo_outputs.size(); ++r) {
        const auto& a = solo_outputs[r];
        const auto& b = res.outputs[r];
        if (a.numel() != b.numel() ||
            std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)) !=
                0) {
          std::fprintf(stderr,
                       "FATAL: request %zu output differs from solo serving\n",
                       r);
          std::abort();
        }
      }
    }

    Summary s;
    s.p50 = fg::serve::percentile(res.latency_s, 50);
    s.p99 = fg::serve::percentile(res.latency_s, 99);
    s.qps = res.queries_per_second;
    s.batches = res.batches;
    const auto cs = cache.stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_bytes_saved = cs.bytes_saved;
    return s;
  };

  const Summary solo = run(false, 0);
  const Summary co = run(true, 0);
  const Summary co_cached = run(true, 4096);
  std::printf("coalesced outputs verified bit-identical to solo serving\n");

  const auto row = [](const char* name, const Summary& s) {
    std::printf("%-22s p50 %8.3f ms   p99 %8.3f ms   %8.0f q/s   %lld batches\n",
                name, s.p50 * 1e3, s.p99 * 1e3, s.qps,
                static_cast<long long>(s.batches));
  };
  row("solo", solo);
  row("coalesced", co);
  row("coalesced+cache", co_cached);
  const double hit_rate =
      co_cached.cache_hits + co_cached.cache_misses > 0
          ? static_cast<double>(co_cached.cache_hits) /
                static_cast<double>(co_cached.cache_hits +
                                    co_cached.cache_misses)
          : 0.0;
  std::printf("feature cache: %lld hits / %lld misses (%.0f%% hit rate), "
              "%.1f MB gather traffic saved\n",
              static_cast<long long>(co_cached.cache_hits),
              static_cast<long long>(co_cached.cache_misses), hit_rate * 100.0,
              static_cast<double>(co_cached.cache_bytes_saved) / 1e6);

  char body[2048];
  std::snprintf(
      body, sizeof body,
      "{\n"
      "    \"graph\": {\"generator\": \"sbm\", \"n\": %d, \"avg_degree\": 16, "
      "\"feature_dim\": 64},\n"
      "    \"model\": \"sage-mean\",\n"
      "    \"fanouts\": [10, 10],\n"
      "    \"trace_requests\": %d,\n"
      "    \"latency_bound_ms\": 2.0,\n"
      "    \"solo\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"qps\": %.1f, "
      "\"batches\": %lld},\n"
      "    \"coalesced\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"qps\": %.1f, "
      "\"batches\": %lld},\n"
      "    \"coalesced_cached\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
      "\"qps\": %.1f, \"batches\": %lld, \"cache_hit_rate\": %.3f, "
      "\"cache_bytes_saved\": %lld},\n"
      "    \"outputs_bit_identical_to_solo\": true\n"
      "  }",
      data.graph.num_vertices(), num_requests, solo.p50 * 1e3, solo.p99 * 1e3,
      solo.qps, static_cast<long long>(solo.batches), co.p50 * 1e3,
      co.p99 * 1e3, co.qps, static_cast<long long>(co.batches),
      co_cached.p50 * 1e3, co_cached.p99 * 1e3, co_cached.qps,
      static_cast<long long>(co_cached.batches), hit_rate,
      static_cast<long long>(co_cached.cache_bytes_saved));
  fg::bench::splice_json_section("BENCH_kernels.json", "serving", body);
  std::printf("BENCH_kernels.json: serving section updated\n");

  std::printf("\n%s",
              fg::obs::render_profile_report(
                  fg::obs::Registry::global().snapshot().since(obs_baseline))
                  .c_str());
  return 0;
}
