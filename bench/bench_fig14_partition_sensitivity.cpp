// Figure 14: sensitivity of FeatGraph CPU performance to the two schedule
// axes — number of graph partitions x number of feature partitions — for
// GCN aggregation on reddit, feature length 128 (the paper's 4x4 heat map).
//
// Paper headline: the optimum sits in the interior (16 graph partitions x
// 4 feature partitions at full scale), degrading toward both corners —
// too few partitions thrash the cache, too many pay merge cost.
#include <cstdio>

#include "common.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::support::Table;
using fg::tensor::Tensor;

int main() {
  fb::print_banner("Figure 14",
                   "schedule sensitivity grid (GCN aggregation, reddit-like, "
                   "feat len 128, 1 thread)");
  // Sized so the feature matrix (100K x 128 floats = 51 MB) exceeds a 25 MB
  // LLC ~2x like the paper's (119 MB vs 25 MB) and the degree is high
  // enough for per-partition merge cost to amortize — otherwise every
  // schedule is equally cache-resident and the grid is flat.
  const fg::graph::Dataset d{
      "reddit-like",
      fg::graph::Graph(fg::graph::gen_community(100000, 128.0, 50, 0.7, 22))};
  constexpr std::int64_t kFeatLen = 128;
  const Tensor x = Tensor::randn({d.graph.num_vertices(), kFeatLen}, 1);

  const int graph_parts[] = {1, 4, 16, 64};
  const int feat_parts[] = {1, 2, 4, 8};

  Table t({"", "# graph parts = 1", "= 4", "= 16", "= 64"});
  double best = 1e30;
  int best_gp = 0, best_fp = 0;
  for (int fp : feat_parts) {
    std::vector<std::string> row = {"# feature parts = " + std::to_string(fp)};
    for (int gp : graph_parts) {
      fg::core::CpuSpmmSchedule sched;
      sched.num_partitions = gp;
      sched.feat_tile = kFeatLen / fp;
      const double secs = fb::measure_seconds([&] {
        (void)fg::core::spmm(d.graph.in_csr(), "copy_u", "sum", sched,
                             {&x, nullptr, nullptr});
      });
      if (secs < best) {
        best = secs;
        best_gp = gp;
        best_fp = fp;
      }
      row.push_back(Table::num(secs * 1e3, 1) + " ms");
    }
    t.add_row(row);
  }
  t.print();
  std::printf("\nbest: %d graph partitions x %d feature partitions (%.1f ms)\n",
              best_gp, best_fp, best * 1e3);
  std::printf("paper (full scale): best at 16 graph x 4 feature partitions\n");
  return 0;
}
