// Shard-parallel execution engine benchmark (ISSUE 8): LLC-sized shards
// drained with cross-shard work stealing vs the static parallel_for split,
// across thread counts — plus the calibrated scaling model's prediction of
// the same curve (independent/LPT mode approximates stealing; cooperative
// mode now charges its per-barrier rendezvous) so the model can be compared
// against REAL multi-core timings wherever the host has the cores.
//
// Thread counts are gated on std::thread::hardware_concurrency(): a 1-core
// host records the 1-thread row only (no oversubscribed timings pretending
// to be scaling data), and the section stays well-formed either way.
// Splices a "shard_exec" section into BENCH_kernels.json.
//
//   $ ./bench_shard_exec
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/schedule_ir.hpp"
#include "featgraph.hpp"
#include "parallel/scaling_model.hpp"
#include "parallel/shard_exec.hpp"

namespace fb = featgraph::bench;
namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::core::ScheduleIr;
using fg::parallel::SchedulingMode;
using fg::parallel::WorkChunk;
using fg::support::Table;
using fg::tensor::Tensor;

namespace {

struct ThreadRow {
  int threads = 0;
  double unsharded_sec = 0.0;
  double sharded_sec = 0.0;
  double predicted_steal_sec = 0.0;
  double predicted_coop_sec = 0.0;
};

}  // namespace

int main() {
  fb::print_banner("shard_exec",
                   "sharded row sweep + work stealing vs static split");
  const double scale = fb::dataset_scale();
  const std::int64_t d = 64;
  const auto coo = fg::graph::gen_rmat(
      static_cast<fg::graph::vid_t>(32768 * scale * 10), 16.0, 42);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const fg::graph::vid_t n = coo.num_src;
  const Tensor x = Tensor::randn({n, d}, 5);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts;
  for (const int t : {1, 2, 4, 8})
    if (t == 1 || static_cast<unsigned>(t) <= hw) thread_counts.push_back(t);

  // Shard count from the LLC sizing rule the engine itself applies: out row
  // + streamed source row per destination, index + edge id per edge.
  fg::parallel::ShardSizing sizing;
  sizing.bytes_per_row = 2 * d * 4;
  sizing.bytes_per_edge = 12;
  const int max_threads = thread_counts.back();
  // The mini-scale working set can fit the LLC outright, where the sizing
  // rule correctly says "one shard" — but then there is no decomposition to
  // price. Floor the count so the bench always exercises the stealing drain
  // (the JSON records the floored value actually run).
  const int shards = std::max(
      fg::parallel::choose_num_shards(csr.num_rows, csr.nnz(), sizing,
                                      max_threads),
      8);
  const std::int64_t steal_grain = 2;
  std::printf("graph: rmat n=%d nnz=%lld feat %lld | hw threads %u | "
              "%d shards, steal grain %lld\n",
              n, static_cast<long long>(csr.nnz()),
              static_cast<long long>(d), hw, shards,
              static_cast<long long>(steal_grain));

  // Scaling-model chunks: one chunk per shard, costs calibrated from the
  // measured 1-thread sharded run, bytes from the sizing rule.
  const double work_bytes =
      static_cast<double>(csr.num_rows) * sizing.bytes_per_row +
      static_cast<double>(csr.nnz()) * sizing.bytes_per_edge;

  std::vector<ThreadRow> rows;
  double serial_sharded_sec = 0.0;
  for (const int t : thread_counts) {
    ThreadRow row;
    row.threads = t;

    CpuSpmmSchedule flat;
    flat.num_threads = t;
    row.unsharded_sec = fb::measure_seconds(
        [&] { (void)fg::core::spmm(csr, "copy_u", "sum", flat, ops); });

    CpuSpmmSchedule sharded;
    sharded.num_threads = t;
    sharded.ir = std::make_shared<const ScheduleIr>(
        ScheduleIr().shard(shards).steal_grain(steal_grain));
    row.sharded_sec = fb::measure_seconds(
        [&] { (void)fg::core::spmm(csr, "copy_u", "sum", sharded, ops); });
    if (t == 1) serial_sharded_sec = row.sharded_sec;

    std::vector<WorkChunk> chunks(
        static_cast<std::size_t>(shards),
        WorkChunk{serial_sharded_sec / shards, work_bytes / shards});
    row.predicted_steal_sec = fg::parallel::predict_parallel_seconds(
        chunks, t, SchedulingMode::kIndependent);
    row.predicted_coop_sec = fg::parallel::predict_parallel_seconds(
        chunks, t, SchedulingMode::kCooperative);
    rows.push_back(row);
  }

  Table table({"threads", "static split", "sharded+steal", "speedup vs 1T",
               "model (steal)", "model (coop barriers)"});
  for (const ThreadRow& row : rows) {
    table.add_row({std::to_string(row.threads),
                   Table::num(row.unsharded_sec * 1e3, 3) + " ms",
                   Table::num(row.sharded_sec * 1e3, 3) + " ms",
                   Table::num(serial_sharded_sec / row.sharded_sec, 2) + "x",
                   Table::num(row.predicted_steal_sec * 1e3, 3) + " ms",
                   Table::num(row.predicted_coop_sec * 1e3, 3) + " ms"});
  }
  table.print();
  if (hw < 2) {
    std::printf("\n1 hardware thread: multi-core rows skipped; the model "
                "columns carry the projected curve.\n");
  }

  // --- splice the "shard_exec" section ---------------------------------
  std::string body = "{\n";
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "    \"graph\": {\"generator\": \"rmat\", \"n\": %d, "
                "\"avg_degree\": 16, \"nnz\": %lld, \"feature_dim\": %lld},\n"
                "    \"hardware_threads\": %u,\n"
                "    \"num_shards\": %d,\n    \"steal_grain\": %lld,\n"
                "    \"kernel\": \"spmm_copy_u_sum\",\n",
                n, static_cast<long long>(csr.nnz()),
                static_cast<long long>(d), hw, shards,
                static_cast<long long>(steal_grain));
  body += buf;
  body += "    \"threads\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThreadRow& row = rows[i];
    std::snprintf(
        buf, sizeof buf,
        "      \"%d\": {\"unsharded_sec\": %.6f, \"sharded_sec\": %.6f, "
        "\"speedup_vs_1t\": %.2f, \"model_steal_sec\": %.6f, "
        "\"model_coop_sec\": %.6f}%s\n",
        row.threads, row.unsharded_sec, row.sharded_sec,
        serial_sharded_sec / row.sharded_sec, row.predicted_steal_sec,
        row.predicted_coop_sec, i + 1 < rows.size() ? "," : "");
    body += buf;
  }
  body += "    }\n  }";
  fg::bench::splice_json_section("BENCH_kernels.json", "shard_exec", body);
  std::printf("BENCH_kernels.json: shard_exec section updated\n");
  return 0;
}
